package consolidation

import (
	"sort"

	"repro/internal/units"
)

// View is the struct-of-arrays form of a fleet snapshot: parallel
// per-host arrays plus one flat VM-slot arena, indexed by VMStart and
// VMCount ranges. A policy snapshot at fleet scale is then O(1) slice
// headers instead of O(VMs) struct copies, and a caller that maintains
// a View incrementally (the cluster engine) only rewrites the slots of
// hosts an event actually touched.
//
// Invariants, on which the policies' bit-identity to the historical
// []HostState path rests:
//
//   - Busy[i] and Mem[i] are always produced by summing host i's slots
//     in slot order — never by incremental subtraction — so they equal
//     what HostState.BusyThreads/UsedMem would return for the same VM
//     list (floating-point addition is order-sensitive).
//   - Order holds every host index, ascending by (Busy, HostName).
//     Host names are unique, so the order is a unique total order and
//     any maintenance strategy (full sort, incremental merge) yields
//     the same permutation.
//   - A host's slots list its residents first (in the owner's
//     iteration order) and any reservation entries after them, exactly
//     as the AoS snapshot ordered HostState.VMs.
type View struct {
	// Per-host parallel arrays.
	HostName  []string
	Threads   []int
	MemCap    []units.Bytes
	IdlePower []units.Watts
	Down      []bool
	Busy      []float64
	Mem       []units.Bytes
	VMStart   []int32
	VMCount   []int32
	// Order is the host permutation ascending by (Busy, HostName).
	Order []int32
	// VM slot arena.
	VMName  []string
	VMMem   []units.Bytes
	VMBusy  []float64
	VMDirty []units.Fraction
	// NameOrdered records that host index order equals host name order
	// (the cluster engine sorts hosts by name). It licenses the
	// order-indexed target scan, whose tie-breaking by name must agree
	// with the historical tie-breaking by index.
	NameOrdered bool
}

// ViewPolicy is a Policy that can plan directly against a View. The
// built-in policies implement it, and their classic Plan entry points
// delegate through NewView, so both paths share one implementation and
// produce bit-identical plans.
type ViewPolicy interface {
	Policy
	PlanView(v *View, cfg Config) (*Plan, error)
}

func (v *View) hostCount() int { return len(v.HostName) }

// vm materializes arena slot s as a VMState.
func (v *View) vm(s int32) VMState {
	return VMState{Name: v.VMName[s], MemBytes: v.VMMem[s], BusyVCPUs: v.VMBusy[s], DirtyRatio: v.VMDirty[s]}
}

// AppendHost flattens one host into the view (build helper).
func (v *View) AppendHost(h HostState) {
	v.HostName = append(v.HostName, h.Name)
	v.Threads = append(v.Threads, h.Threads)
	v.MemCap = append(v.MemCap, h.MemBytes)
	v.IdlePower = append(v.IdlePower, h.IdlePower)
	v.Down = append(v.Down, h.Down)
	v.VMStart = append(v.VMStart, int32(len(v.VMName)))
	v.VMCount = append(v.VMCount, int32(len(h.VMs)))
	busy := 0.0
	var mem units.Bytes
	for _, g := range h.VMs {
		v.VMName = append(v.VMName, g.Name)
		v.VMMem = append(v.VMMem, g.MemBytes)
		v.VMBusy = append(v.VMBusy, g.BusyVCPUs)
		v.VMDirty = append(v.VMDirty, g.DirtyRatio)
		busy += g.BusyVCPUs
		mem += g.MemBytes
	}
	v.Busy = append(v.Busy, busy)
	v.Mem = append(v.Mem, mem)
}

// SortOrder (re)builds Order ascending by (Busy, HostName).
func (v *View) SortOrder() {
	v.Order = v.Order[:0]
	for i := range v.HostName {
		v.Order = append(v.Order, int32(i))
	}
	sort.Slice(v.Order, func(a, b int) bool {
		i, j := v.Order[a], v.Order[b]
		if v.Busy[i] != v.Busy[j] {
			return v.Busy[i] < v.Busy[j]
		}
		return v.HostName[i] < v.HostName[j]
	})
}

// NewView flattens an AoS host list into a fresh View. The input is
// not retained; callers with invalid hosts must validate first (the
// legacy Plan entry points do).
func NewView(hosts []HostState) *View {
	v := &View{}
	nameOrdered := true
	for i, h := range hosts {
		v.AppendHost(h)
		if i > 0 && hosts[i-1].Name >= h.Name {
			nameOrdered = false
		}
	}
	v.NameOrdered = nameOrdered
	v.SortOrder()
	return v
}

// vwork is one PlanView invocation's working state: mutable aggregate
// copies over a read-only View, with per-host VM lists materialized
// lazily — only hosts a plan actually mutates ever copy their slots.
type vwork struct {
	v    *View
	busy []float64
	mem  []units.Bytes
	cnt  []int32
	// vms holds the materialized VM list of every mutated host; nil
	// means the arena range is still current.
	vms [][]VMState
	// touched lists hosts whose aggregates differ from the snapshot
	// (evacuation targets and sources, drain commits); the order-indexed
	// target scan must price them individually instead of trusting the
	// snapshot order.
	touched     []int32
	touchedMark []bool
	received    []bool
}

func newVwork(v *View) *vwork {
	n := v.hostCount()
	w := &vwork{
		v:           v,
		busy:        append([]float64(nil), v.Busy...),
		mem:         append([]units.Bytes(nil), v.Mem...),
		cnt:         append([]int32(nil), v.VMCount...),
		vms:         make([][]VMState, n),
		touchedMark: make([]bool, n),
		received:    make([]bool, n),
	}
	return w
}

// touch marks host i as diverged from the snapshot.
func (w *vwork) touch(i int32) {
	if !w.touchedMark[i] {
		w.touchedMark[i] = true
		w.touched = append(w.touched, i)
	}
}

// vmsOf returns host i's current VM list, materializing it from the
// arena on first call. Mutation paths only.
func (w *vwork) vmsOf(i int32) []VMState {
	if w.vms[i] == nil {
		s, n := w.v.VMStart[i], w.v.VMCount[i]
		out := make([]VMState, 0, n)
		for k := s; k < s+n; k++ {
			out = append(out, w.v.vm(k))
		}
		w.vms[i] = out
	}
	return w.vms[i]
}

// appendVMs copies host i's current VM list into dst without
// materializing an overlay.
func (w *vwork) appendVMs(dst []VMState, i int32) []VMState {
	if l := w.vms[i]; l != nil {
		return append(dst, l...)
	}
	s, n := w.v.VMStart[i], w.v.VMCount[i]
	for k := s; k < s+n; k++ {
		dst = append(dst, w.v.vm(k))
	}
	return dst
}

// hostHasPinned reports whether any of host i's VMs is pinned, without
// materializing.
func (w *vwork) hostHasPinned(i int32, pinned map[string]bool) bool {
	if len(pinned) == 0 {
		return false
	}
	if l := w.vms[i]; l != nil {
		for _, g := range l {
			if pinned[g.Name] {
				return true
			}
		}
		return false
	}
	s, n := w.v.VMStart[i], w.v.VMCount[i]
	for k := s; k < s+n; k++ {
		if pinned[w.v.VMName[k]] {
			return true
		}
	}
	return false
}

// removeVM detaches a named VM from host i, preserving order.
func (w *vwork) removeVM(i int32, name string) (VMState, bool) {
	l := w.vmsOf(i)
	g, ok := removeVMSlice(&l, name)
	if !ok {
		return VMState{}, false
	}
	w.vms[i] = l
	w.cnt[i] = int32(len(l))
	w.touch(i)
	w.recompute(i)
	return g, true
}

// addVM appends a VM to host i.
func (w *vwork) addVM(i int32, g VMState) {
	w.vms[i] = append(w.vmsOf(i), g)
	w.cnt[i] = int32(len(w.vms[i]))
	w.touch(i)
	w.recompute(i)
}

// recompute refreshes host i's aggregates by re-summing its current VM
// list in order (see the View invariant).
func (w *vwork) recompute(i int32) {
	busy := 0.0
	var mem units.Bytes
	for _, g := range w.vmsOf(i) {
		busy += g.BusyVCPUs
		mem += g.MemBytes
	}
	w.busy[i], w.mem[i] = busy, mem
}

// finishPlan computes the plan's aggregate fields from the working
// state, exactly as finishPlan does for the AoS path.
func (w *vwork) finishPlan(plan *Plan) {
	for i := range w.cnt {
		if w.cnt[i] == 0 && !w.v.Down[i] {
			plan.FreedHosts = append(plan.FreedHosts, w.v.HostName[i])
			plan.IdleSavings += w.v.IdlePower[i]
		}
	}
	sort.Strings(plan.FreedHosts)
	for _, m := range plan.Moves {
		plan.MigrationEnergy += m.Cost.Energy
	}
}
