package consolidation

import (
	"testing"
)

// downDC is smallDC with host c crashed: its resident ("cache") is the
// evacuation candidate.
func downDC() []HostState {
	dc := smallDC()
	dc[2].Down = true
	return dc
}

func TestEnergyAwareEvacuatesBeforeConsolidating(t *testing.T) {
	model := &stubModel{}
	plan, err := EnergyAware{Model: model}.Plan(downDC(), Config{
		Evacuate: []string{"cache"},
		MaxMoves: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The single move budget goes to the evacuation, not to a drain.
	if len(plan.Moves) != 1 || plan.Moves[0].VM != "cache" || plan.Moves[0].From != "c" {
		t.Fatalf("moves = %+v, want the evacuation of cache off c", plan.Moves)
	}
	if plan.Moves[0].To == "c" {
		t.Fatal("evacuation stayed on the dead host")
	}
	if plan.Moves[0].Cost.Energy <= 0 {
		t.Error("evacuation move carries no cost")
	}
	// The emptied dead host is not a freed host: it draws nothing.
	for _, h := range plan.FreedHosts {
		if h == "c" {
			t.Error("dead host c counted as freed")
		}
	}
}

func TestEnergyAwareEvacuationIgnoresPaybackAndWakesSpares(t *testing.T) {
	// A fleet where the only live refuge is an empty spare: ordinary
	// drains never wake empty hosts, evacuations must.
	hosts := []HostState{
		{Name: "dead", Threads: 32, MemBytes: gib(32), IdlePower: 440, Down: true, VMs: []VMState{
			{Name: "orphan", MemBytes: gib(4), BusyVCPUs: 4, DirtyRatio: 0.1},
		}},
		{Name: "full", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "busy", MemBytes: gib(4), BusyVCPUs: 28, DirtyRatio: 0.1},
		}},
		{Name: "spare", Threads: 32, MemBytes: gib(32), IdlePower: 440},
	}
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, Config{Evacuate: []string{"orphan"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 || plan.Moves[0].VM != "orphan" || plan.Moves[0].To != "spare" {
		t.Fatalf("moves = %+v, want orphan evacuated to the empty spare", plan.Moves)
	}
}

func TestEnergyAwareUnplaceableEvacueeIsLeftForNextRound(t *testing.T) {
	hosts := []HostState{
		{Name: "dead", Threads: 32, MemBytes: gib(32), IdlePower: 440, Down: true, VMs: []VMState{
			{Name: "orphan", MemBytes: gib(30), BusyVCPUs: 4, DirtyRatio: 0.1},
		}},
		{Name: "full", Threads: 32, MemBytes: gib(16), IdlePower: 440, VMs: []VMState{
			{Name: "busy", MemBytes: gib(4), BusyVCPUs: 8, DirtyRatio: 0.1},
		}},
		{Name: "tiny", Threads: 32, MemBytes: gib(8), IdlePower: 440, VMs: []VMState{
			{Name: "small", MemBytes: gib(2), BusyVCPUs: 2, DirtyRatio: 0.1},
		}},
	}
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, Config{Evacuate: []string{"orphan"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		if m.VM == "orphan" {
			t.Fatalf("orphan (30 GiB) placed despite no host having room: %+v", m)
		}
	}
}

func TestEnergyAwareNeverDrainsOntoDownHost(t *testing.T) {
	dc := smallDC()
	// Crash the natural drain target; the drain of c must route its VM
	// elsewhere or not at all — never onto the dead host.
	dc[1].Down = true
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(dc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		if m.To == "b" {
			t.Errorf("move %+v targets the crashed host", m)
		}
	}
}

func TestFFDEvacueesPackFirst(t *testing.T) {
	plan, err := FirstFitDecreasing{Model: &stubModel{}}.Plan(downDC(), Config{
		Evacuate: []string{"cache"},
		MaxMoves: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// cache has the smallest demand — pure FFD would pack it last and
	// the 1-move budget would go to a bigger VM. Evacuees jump the
	// queue.
	if len(plan.Moves) != 1 || plan.Moves[0].VM != "cache" {
		t.Fatalf("moves = %+v, want the evacuation of cache to spend the single move", plan.Moves)
	}
	if plan.Moves[0].To == "c" {
		t.Fatal("FFD placed the evacuee back on the dead host")
	}
}

func TestFFDSkipsDownBins(t *testing.T) {
	dc := downDC()
	plan, err := FirstFitDecreasing{Model: &stubModel{}}.Plan(dc, Config{Evacuate: []string{"cache"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		if m.To == "c" {
			t.Errorf("move %+v targets the crashed bin", m)
		}
	}
	for _, h := range plan.FreedHosts {
		if h == "c" {
			t.Error("dead bin c counted as freed")
		}
	}
}
