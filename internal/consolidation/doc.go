// Package consolidation implements the remaining actor of the paper's
// Figure 1: the consolidation manager that "constantly monitors the load
// of the data centre, selects the VM to be migrated and the target host,
// and finally initiates the migration". The paper's motivation is that
// such managers need migration *energy* predictions to make good
// decisions; this package provides the decision layer that consumes them.
//
// Two placement policies are provided: an energy-aware policy that prices
// every candidate move with a migration-energy model (WAVM3 in practice)
// and packs VMs onto the fewest hosts at minimal migration cost, and a
// classic first-fit-decreasing policy that ignores migration energy — the
// behaviour the paper argues against.
//
// Position in the data flow (see ARCHITECTURE.md): a Policy turns a
// []HostState into a Plan of Moves; the wavm3 package adapts its trained
// Estimator into the CostModel the energy-aware policy prices with, and
// internal/dcsim executes a finished Plan move by move as measured
// migration simulations. Data-centre scenarios in the scenario library
// (internal/scenario) describe HostStates declaratively and default to
// the first-fit-decreasing policy, the only planner that needs no trained
// model.
package consolidation
