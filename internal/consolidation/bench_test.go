package consolidation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/units"
)

// benchState builds an n-host planning input with the same shape the
// cluster benchmarks use: every fourth host nearly idle (a drain
// candidate), the rest moderately loaded with headroom.
func benchState(n int) []HostState {
	hosts := make([]HostState, n)
	for i := range hosts {
		h := HostState{
			Name:      fmt.Sprintf("h%04d", i),
			Threads:   32,
			MemBytes:  32 * units.GiB,
			IdlePower: 440,
		}
		if i%4 == 3 {
			h.VMs = []VMState{{
				Name: fmt.Sprintf("idle%04d", i), MemBytes: 4 * units.GiB,
				BusyVCPUs: 1, DirtyRatio: 0.05,
			}}
		} else {
			h.VMs = []VMState{{
				Name: fmt.Sprintf("app%04d", i), MemBytes: 4 * units.GiB,
				BusyVCPUs: 6 + float64(i%3)*2, DirtyRatio: 0.1,
			}}
		}
		hosts[i] = h
	}
	return hosts
}

func benchPlan(b *testing.B, p Policy, n int) {
	hosts := benchState(n)
	cfg := Config{Horizon: 24 * time.Hour}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := p.Plan(hosts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Moves) == 0 {
			b.Fatal("fixture drift: the policy plans nothing")
		}
	}
}

// The Plan benchmarks pin the planning-round cost at the fleet sizes
// the cluster scheduler targets: a policy tick at 256 hosts runs inside
// every BenchmarkClusterTimeline256 round, so a regression here is a
// regression there.
func BenchmarkPlanEnergyAware16(b *testing.B) {
	benchPlan(b, EnergyAware{Model: HeuristicCost{}}, 16)
}

func BenchmarkPlanEnergyAware256(b *testing.B) {
	benchPlan(b, EnergyAware{Model: HeuristicCost{}}, 256)
}

func BenchmarkPlanFFD16(b *testing.B) {
	benchPlan(b, FirstFitDecreasing{Model: HeuristicCost{}}, 16)
}

func BenchmarkPlanFFD256(b *testing.B) {
	benchPlan(b, FirstFitDecreasing{Model: HeuristicCost{}}, 256)
}
