package consolidation

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// VMState describes one running VM as the manager sees it.
type VMState struct {
	// Name uniquely identifies the VM in the data centre.
	Name string
	// MemBytes is the VM memory size (what a migration must move).
	MemBytes units.Bytes
	// BusyVCPUs is the VM's CPU demand in busy-vCPU units.
	BusyVCPUs float64
	// DirtyRatio is the VM's steady-state memory dirtying ratio.
	DirtyRatio units.Fraction
}

// Validate rejects malformed VM descriptors.
func (v VMState) Validate() error {
	switch {
	case v.Name == "":
		return errors.New("consolidation: VM has no name")
	case v.MemBytes <= 0:
		return fmt.Errorf("consolidation: VM %s has no memory", v.Name)
	case v.BusyVCPUs < 0:
		return fmt.Errorf("consolidation: VM %s has negative CPU demand", v.Name)
	case v.DirtyRatio < 0 || v.DirtyRatio > 1:
		return fmt.Errorf("consolidation: VM %s dirty ratio %v outside [0,1]", v.Name, v.DirtyRatio)
	}
	return nil
}

// HostState describes one physical host and its resident VMs.
type HostState struct {
	// Name identifies the host.
	Name string
	// Threads is the CPU capacity in hardware threads.
	Threads int
	// MemBytes is the RAM capacity.
	MemBytes units.Bytes
	// IdlePower is what the host draws doing nothing — the saving made by
	// emptying and switching it off.
	IdlePower units.Watts
	// Down marks a crashed host: it must not receive placements, it
	// draws no reclaimable idle power (so emptying it frees nothing),
	// and its residents are evacuation candidates (see Config.Evacuate).
	Down bool
	// VMs are the resident guests.
	VMs []VMState
}

// Validate rejects malformed host descriptors.
func (h HostState) Validate() error {
	switch {
	case h.Name == "":
		return errors.New("consolidation: host has no name")
	case h.Threads <= 0:
		return fmt.Errorf("consolidation: host %s has no CPU", h.Name)
	case h.MemBytes <= 0:
		return fmt.Errorf("consolidation: host %s has no memory", h.Name)
	case h.IdlePower <= 0:
		return fmt.Errorf("consolidation: host %s has no idle power", h.Name)
	}
	seen := map[string]bool{}
	for _, v := range h.VMs {
		if err := v.Validate(); err != nil {
			return err
		}
		if seen[v.Name] {
			return fmt.Errorf("consolidation: duplicate VM %q on host %s", v.Name, h.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

// BusyThreads returns the host's aggregate CPU demand.
func (h HostState) BusyThreads() float64 {
	s := 0.0
	for _, v := range h.VMs {
		s += v.BusyVCPUs
	}
	return s
}

// UsedMem returns the host's aggregate memory allocation.
func (h HostState) UsedMem() units.Bytes {
	var s units.Bytes
	for _, v := range h.VMs {
		s += v.MemBytes
	}
	return s
}

// fits reports whether vm can be placed on h under the utilisation cap.
func (h HostState) fits(vm VMState, cpuCap float64) bool {
	return h.BusyThreads()+vm.BusyVCPUs <= float64(h.Threads)*cpuCap &&
		h.UsedMem()+vm.MemBytes <= h.MemBytes
}

// MigrationCost is what the energy model predicts for one candidate move.
type MigrationCost struct {
	Energy   units.Joules
	Duration time.Duration
}

// CostModel prices a candidate migration. WAVM3's estimator satisfies it
// via a small adapter; tests use stubs.
type CostModel interface {
	// Cost predicts moving vm from src to dst given both hosts' projected
	// CPU loads (excluding the migrating VM itself).
	Cost(vm VMState, srcBusy, dstBusy float64) (MigrationCost, error)
}

// Move is one planned migration.
type Move struct {
	VM   string
	From string
	To   string
	Cost MigrationCost
}

// Plan is the outcome of one consolidation round.
type Plan struct {
	// Moves in execution order.
	Moves []Move
	// MigrationEnergy is the total predicted cost of the moves.
	MigrationEnergy units.Joules
	// FreedHosts are hosts left empty by the plan (candidates to switch off).
	FreedHosts []string
	// IdleSavings is the idle power reclaimed by switching freed hosts off.
	IdleSavings units.Watts
}

// Payback returns how long the freed idle power needs to amortise the
// migration energy; zero savings yields an error.
func (p *Plan) Payback() (time.Duration, error) {
	if p.IdleSavings <= 0 {
		return 0, errors.New("consolidation: plan frees no idle power")
	}
	secs := float64(p.MigrationEnergy) / float64(p.IdleSavings)
	return time.Duration(secs * float64(time.Second)), nil
}

// Config bounds a consolidation round.
type Config struct {
	// CPUCap is the post-consolidation utilisation ceiling per host
	// (default 0.9: never pack a host completely).
	CPUCap float64
	// MaxMoves bounds the number of migrations per round (default: no
	// bound).
	MaxMoves int
	// Horizon is the time over which freed idle power must amortise the
	// migration energy spent to free it (default 1 hour). A drain whose
	// cost exceeds IdlePower×Horizon is not worth doing and is skipped by
	// the energy-aware policy.
	Horizon time.Duration
	// Pinned names VMs that must not move this round. A periodic
	// re-planner sets it to the in-flight migrations (and their
	// destination-side reservations) when a tick fires while the previous
	// plan is still executing: pinned VMs contribute load and occupy
	// capacity wherever they sit, but no policy may plan a move for them.
	// Names that match no VM are ignored, so callers can pin
	// reservations without checking whether they materialised.
	Pinned []string
	// Evacuate names VMs stranded on Down hosts that must be placed
	// before any consolidation work. Policies place them onto live hosts
	// first — largest demand first, names breaking ties — and leave any
	// that cannot be placed this round where they sit (the next round
	// retries). Names that match no VM are ignored.
	Evacuate []string
}

func (c Config) withDefaults() Config {
	if c.CPUCap <= 0 || c.CPUCap > 1 {
		c.CPUCap = 0.9
	}
	if c.Horizon <= 0 {
		c.Horizon = time.Hour
	}
	return c
}

// pinnedSet indexes the pinned VM names.
func (c Config) pinnedSet() map[string]bool {
	if len(c.Pinned) == 0 {
		return nil
	}
	set := make(map[string]bool, len(c.Pinned))
	for _, name := range c.Pinned {
		set[name] = true
	}
	return set
}

// evacuateSet indexes the evacuation VM names.
func (c Config) evacuateSet() map[string]bool {
	if len(c.Evacuate) == 0 {
		return nil
	}
	set := make(map[string]bool, len(c.Evacuate))
	for _, name := range c.Evacuate {
		set[name] = true
	}
	return set
}

// hasPinned reports whether any of the host's VMs is pinned.
func (h HostState) hasPinned(pinned map[string]bool) bool {
	for _, v := range h.VMs {
		if pinned[v.Name] {
			return true
		}
	}
	return false
}

// Policy turns a data-centre state into a consolidation plan. Policies
// are re-entrant: a periodic re-planner invokes Plan repeatedly against
// the evolving state, pinning in-flight VMs via Config.Pinned between
// invocations.
type Policy interface {
	Name() string
	Plan(hosts []HostState, cfg Config) (*Plan, error)
}

// validateHosts checks the input state and global VM-name uniqueness.
func validateHosts(hosts []HostState) error {
	if len(hosts) < 2 {
		return errors.New("consolidation: need at least two hosts")
	}
	names := map[string]bool{}
	vms := map[string]bool{}
	for _, h := range hosts {
		if err := h.Validate(); err != nil {
			return err
		}
		if names[h.Name] {
			return fmt.Errorf("consolidation: duplicate host %q", h.Name)
		}
		names[h.Name] = true
		for _, v := range h.VMs {
			if vms[v.Name] {
				return fmt.Errorf("consolidation: VM %q appears on two hosts", v.Name)
			}
			vms[v.Name] = true
		}
	}
	return nil
}

// cloneHosts deep-copies the state so planning never mutates the input.
func cloneHosts(hosts []HostState) []HostState {
	out := make([]HostState, len(hosts))
	for i, h := range hosts {
		out[i] = h
		out[i].VMs = append([]VMState(nil), h.VMs...)
	}
	return out
}

// hostByName returns a pointer into the working copy.
func hostByName(hosts []HostState, name string) *HostState {
	for i := range hosts {
		if hosts[i].Name == name {
			return &hosts[i]
		}
	}
	return nil
}

// removeVM detaches a VM from a host state.
func removeVM(h *HostState, name string) (VMState, bool) {
	return removeVMSlice(&h.VMs, name)
}

// removeVMSlice detaches a VM from a bare VM list, preserving order.
func removeVMSlice(vms *[]VMState, name string) (VMState, bool) {
	for i, v := range *vms {
		if v.Name == name {
			*vms = append((*vms)[:i], (*vms)[i+1:]...)
			return v, true
		}
	}
	return VMState{}, false
}

// finishPlan computes the aggregate fields from the working state. A
// crashed host emptied by evacuation is not "freed": it already draws
// nothing, so switching it off reclaims nothing.
func finishPlan(plan *Plan, hosts []HostState) {
	for _, h := range hosts {
		if len(h.VMs) == 0 && !h.Down {
			plan.FreedHosts = append(plan.FreedHosts, h.Name)
			plan.IdleSavings += h.IdlePower
		}
	}
	sort.Strings(plan.FreedHosts)
	for _, m := range plan.Moves {
		plan.MigrationEnergy += m.Cost.Energy
	}
}
