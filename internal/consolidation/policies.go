package consolidation

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// EnergyAware is the paper-aligned policy: it tries to empty the least
// loaded hosts, pricing every candidate move with the migration energy
// model and choosing, per VM, the admissible target with the lowest
// predicted energy. A move is only taken when the host being drained can
// be fully emptied — half-drained hosts save nothing.
type EnergyAware struct {
	Model CostModel
}

// Name implements Policy.
func (EnergyAware) Name() string { return "energy-aware" }

// Plan implements Policy.
func (p EnergyAware) Plan(hosts []HostState, cfg Config) (*Plan, error) {
	if p.Model == nil {
		return nil, errors.New("consolidation: energy-aware policy needs a cost model")
	}
	if err := validateHosts(hosts); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	work := cloneHosts(hosts)
	plan := &Plan{}
	pinned := cfg.pinnedSet()
	received := map[string]bool{} // hosts that gained VMs this round

	// Drain candidates: least loaded first (cheapest to empty).
	order := make([]string, len(work))
	for i, h := range work {
		order[i] = h.Name
	}
	sort.Slice(order, func(i, j int) bool {
		hi, hj := hostByName(work, order[i]), hostByName(work, order[j])
		if hi.BusyThreads() != hj.BusyThreads() {
			return hi.BusyThreads() < hj.BusyThreads()
		}
		return hi.Name < hj.Name
	})

	for _, srcName := range order {
		src := hostByName(work, srcName)
		if len(src.VMs) == 0 {
			continue
		}
		// A host that just received migrations is pinned for this round:
		// re-draining it would move VMs twice and burn energy for nothing.
		if received[srcName] {
			continue
		}
		// A host with a pinned VM (an in-flight migration from an earlier
		// round) can never be fully emptied, and a half-drain saves
		// nothing — skip it until the flight lands.
		if src.hasPinned(pinned) {
			continue
		}
		moves, ok, err := p.drain(work, src, cfg, len(plan.Moves))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // cannot fully empty this host; leave it untouched
		}
		// Worth-it check: the freed idle power must amortise the drain's
		// energy within the configured horizon.
		var drainCost units.Joules
		for _, m := range moves {
			drainCost += m.Cost.Energy
		}
		if drainCost > units.EnergyOver(src.IdlePower, cfg.Horizon) {
			continue
		}
		// Commit: execute the drain against the working state.
		for _, m := range moves {
			vm, found := removeVM(hostByName(work, m.From), m.VM)
			if !found {
				return nil, fmt.Errorf("consolidation: internal error, VM %q vanished", m.VM)
			}
			dst := hostByName(work, m.To)
			dst.VMs = append(dst.VMs, vm)
			plan.Moves = append(plan.Moves, m)
			received[m.To] = true
		}
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			break
		}
	}
	finishPlan(plan, work)
	return plan, nil
}

// drain plans the complete evacuation of src, tentatively, against a copy
// of the working state. It returns ok=false when some VM has no admissible
// target or the move budget would be exceeded.
func (p EnergyAware) drain(work []HostState, src *HostState, cfg Config, movesSoFar int) ([]Move, bool, error) {
	tmp := cloneHosts(work)
	tmpSrc := hostByName(tmp, src.Name)
	var moves []Move

	// Biggest VMs first: they are the hardest to place.
	vms := append([]VMState(nil), tmpSrc.VMs...)
	sort.Slice(vms, func(i, j int) bool {
		if vms[i].BusyVCPUs != vms[j].BusyVCPUs {
			return vms[i].BusyVCPUs > vms[j].BusyVCPUs
		}
		return vms[i].Name < vms[j].Name
	})

	for _, vm := range vms {
		if cfg.MaxMoves > 0 && movesSoFar+len(moves) >= cfg.MaxMoves {
			return nil, false, nil
		}
		best := -1
		var bestCost MigrationCost
		for i := range tmp {
			dst := &tmp[i]
			if dst.Name == src.Name {
				continue
			}
			// Never wake an already-empty host to fill it: that defeats
			// consolidation.
			if len(dst.VMs) == 0 {
				continue
			}
			if !dst.fits(vm, cfg.CPUCap) {
				continue
			}
			cost, err := p.Model.Cost(vm, tmpSrc.BusyThreads()-vm.BusyVCPUs, dst.BusyThreads())
			if err != nil {
				return nil, false, err
			}
			if best < 0 || cost.Energy < bestCost.Energy {
				best = i
				bestCost = cost
			}
		}
		if best < 0 {
			return nil, false, nil
		}
		moved, found := removeVM(tmpSrc, vm.Name)
		if !found {
			return nil, false, fmt.Errorf("consolidation: internal error draining %q", vm.Name)
		}
		tmp[best].VMs = append(tmp[best].VMs, moved)
		moves = append(moves, Move{VM: vm.Name, From: src.Name, To: tmp[best].Name, Cost: bestCost})
	}
	return moves, true, nil
}

// FirstFitDecreasing is the energy-blind baseline: sort all VMs by CPU
// demand and re-pack them onto hosts first-fit, then express the result as
// moves. It is the classic bin-packing consolidation the related work uses
// and the paper's argument target — it never looks at migration energy, so
// it will happily move a 95%-dirty VM onto a busy host.
type FirstFitDecreasing struct {
	// Model, when set, prices the resulting moves (for comparison); the
	// policy itself ignores the prices.
	Model CostModel
}

// Name implements Policy.
func (FirstFitDecreasing) Name() string { return "first-fit-decreasing" }

// Plan implements Policy.
func (p FirstFitDecreasing) Plan(hosts []HostState, cfg Config) (*Plan, error) {
	if err := validateHosts(hosts); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	work := cloneHosts(hosts)
	plan := &Plan{}
	pinned := cfg.pinnedSet()

	// Gather every movable VM with its origin. Pinned VMs (in-flight
	// migrations from a previous round) are not re-packed: they keep
	// their bin below and just consume its capacity.
	type placed struct {
		vm   VMState
		from string
	}
	var all []placed
	for _, h := range work {
		for _, v := range h.VMs {
			if pinned[v.Name] {
				continue
			}
			all = append(all, placed{v, h.Name})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].vm.BusyVCPUs != all[j].vm.BusyVCPUs {
			return all[i].vm.BusyVCPUs > all[j].vm.BusyVCPUs
		}
		return all[i].vm.Name < all[j].vm.Name
	})

	// Re-pack into empty bins in host order; pinned VMs pre-occupy their
	// current bin.
	bins := cloneHosts(hosts)
	for i := range bins {
		kept := bins[i].VMs[:0]
		for _, v := range bins[i].VMs {
			if pinned[v.Name] {
				kept = append(kept, v)
			}
		}
		bins[i].VMs = kept
	}
	for idx, pl := range all {
		// Move budget exhausted: every VM not yet processed stays where
		// it is. They must land back in their origin bins, or the freed-
		// host accounting below would report hosts as empty that still
		// run the unmoved tail of the packing order.
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			for _, rest := range all[idx:] {
				origin := hostByName(bins, rest.from)
				origin.VMs = append(origin.VMs, rest.vm)
			}
			break
		}
		placedAt := ""
		for i := range bins {
			if bins[i].fits(pl.vm, cfg.CPUCap) {
				bins[i].VMs = append(bins[i].VMs, pl.vm)
				placedAt = bins[i].Name
				break
			}
		}
		if placedAt == "" {
			return nil, fmt.Errorf("consolidation: FFD cannot place VM %q", pl.vm.Name)
		}
		if placedAt != pl.from {
			move := Move{VM: pl.vm.Name, From: pl.from, To: placedAt}
			if p.Model != nil {
				srcBusy := hostByName(work, pl.from).BusyThreads() - pl.vm.BusyVCPUs
				dstBusy := hostByName(bins, placedAt).BusyThreads() - pl.vm.BusyVCPUs
				cost, err := p.Model.Cost(pl.vm, srcBusy, dstBusy)
				if err != nil {
					return nil, err
				}
				move.Cost = cost
			}
			plan.Moves = append(plan.Moves, move)
		}
	}
	finishPlan(plan, bins)
	return plan, nil
}
