package consolidation

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// viewDrainScratch is the reusable working memory of EnergyAware's
// tentative drains. One instance serves every drain of a PlanView call;
// the epoch counter invalidates the per-host tentative deltas between
// drains without clearing the arrays.
type viewDrainScratch struct {
	epoch     int
	tentEpoch []int
	tentBusy  []float64
	tentMem   []units.Bytes
	// tentTouched lists the hosts that received tentative placements
	// this epoch, so the order-indexed target scan can price them as
	// finalists instead of trusting the snapshot order.
	tentTouched []int32
	srcVMs      []VMState // src residents not yet tentatively placed
	order       []VMState // src residents, biggest first
	moves       []Move
	moveDst     []int32 // target host index per move (avoids a name lookup at commit)
}

func newViewDrainScratch(n int) *viewDrainScratch {
	return &viewDrainScratch{
		tentEpoch: make([]int, n),
		tentBusy:  make([]float64, n),
		tentMem:   make([]units.Bytes, n),
	}
}

// effective returns host j's busy/memory aggregates including this
// drain's tentative placements. Tentative additions are applied
// sequentially on top of the cached sum — the same left-to-right order
// a re-sum of the appended VM list would use.
func (sc *viewDrainScratch) effective(w *vwork, j int32) (float64, units.Bytes) {
	if sc.tentEpoch[j] == sc.epoch {
		return sc.tentBusy[j], sc.tentMem[j]
	}
	return w.busy[j], w.mem[j]
}

// add tentatively places a VM on host j for the rest of this drain.
func (sc *viewDrainScratch) add(w *vwork, j int32, vm VMState) {
	b, m := sc.effective(w, j)
	if sc.tentEpoch[j] != sc.epoch {
		sc.tentTouched = append(sc.tentTouched, j)
	}
	sc.tentBusy[j], sc.tentMem[j] = b+vm.BusyVCPUs, m+vm.MemBytes
	sc.tentEpoch[j] = sc.epoch
}

// EnergyAware is the paper-aligned policy: it tries to empty the least
// loaded hosts, pricing every candidate move with the migration energy
// model and choosing, per VM, the admissible target with the lowest
// predicted energy. A move is only taken when the host being drained can
// be fully emptied — half-drained hosts save nothing.
type EnergyAware struct {
	Model CostModel
}

// Name implements Policy.
func (EnergyAware) Name() string { return "energy-aware" }

// Plan implements Policy by flattening the hosts into a View and
// delegating to the shared view planner; both entry points run one
// implementation and produce bit-identical plans.
func (p EnergyAware) Plan(hosts []HostState, cfg Config) (*Plan, error) {
	if p.Model == nil {
		return nil, errors.New("consolidation: energy-aware policy needs a cost model")
	}
	if err := validateHosts(hosts); err != nil {
		return nil, err
	}
	return p.planView(NewView(hosts), cfg)
}

// PlanView implements ViewPolicy. The view's host set is trusted (the
// cluster engine validates at construction); only the structural
// minimum is re-checked.
func (p EnergyAware) PlanView(v *View, cfg Config) (*Plan, error) {
	if p.Model == nil {
		return nil, errors.New("consolidation: energy-aware policy needs a cost model")
	}
	if v.hostCount() < 2 {
		return nil, errors.New("consolidation: need at least two hosts")
	}
	return p.planView(v, cfg)
}

func (p EnergyAware) planView(v *View, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	w := newVwork(v)
	plan := &Plan{}
	pinned := cfg.pinnedSet()

	// Evacuations come first: VMs stranded on crashed hosts are placed
	// before any consolidation work spends the move budget.
	if err := p.evacuateView(w, cfg, plan, pinned); err != nil {
		return nil, err
	}

	// Drain candidates: least loaded first (cheapest to empty). When
	// nothing was evacuated the view's maintained Order is exactly this
	// permutation; otherwise re-sort a copy under the post-evacuation
	// aggregates.
	order := v.Order
	if len(w.touched) > 0 {
		order = append([]int32(nil), v.Order...)
		sort.Slice(order, func(a, b int) bool {
			i, j := order[a], order[b]
			if w.busy[i] != w.busy[j] {
				return w.busy[i] < w.busy[j]
			}
			return v.HostName[i] < v.HostName[j]
		})
	}

	// The order-indexed target scan: HeuristicCost's energy is strictly
	// increasing in the destination's busy for a fixed (VM, source), so
	// the cheapest admissible unmutated target is the first admissible
	// host walking Order busy-ascending — and with NameOrdered, its
	// (busy, name)-first position also reproduces the historical
	// lowest-index tie-break. Hosts the plan has mutated are priced
	// individually as finalists. liveOrder pre-drops hosts that can
	// never take a drain guest (empty or down), so the walk skips a
	// mostly-empty fleet in O(1).
	_, fastOK := p.Model.(HeuristicCost)
	fastOK = fastOK && v.NameOrdered
	var liveOrder []int32
	if fastOK {
		liveOrder = make([]int32, 0, len(order))
		for _, j := range order {
			if w.cnt[j] > 0 && !v.Down[j] {
				liveOrder = append(liveOrder, j)
			}
		}
	}

	sc := newViewDrainScratch(v.hostCount())
	for _, si := range order {
		if w.cnt[si] == 0 {
			continue
		}
		// A crashed host draws no idle power: emptying it frees nothing,
		// and its residents move through evacuation, not consolidation.
		if v.Down[si] {
			continue
		}
		// A host that just received migrations is pinned for this round:
		// re-draining it would move VMs twice and burn energy for nothing.
		if w.received[si] {
			continue
		}
		// A host with a pinned VM (an in-flight migration from an earlier
		// round) can never be fully emptied, and a half-drain saves
		// nothing — skip it until the flight lands.
		if w.hostHasPinned(si, pinned) {
			continue
		}
		moves, ok, err := p.drainView(w, si, cfg, len(plan.Moves), sc, liveOrder, fastOK)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // cannot fully empty this host; leave it untouched
		}
		// Worth-it check: the freed idle power must amortise the drain's
		// energy within the configured horizon.
		var drainCost units.Joules
		for _, m := range moves {
			drainCost += m.Cost.Energy
		}
		if drainCost > units.EnergyOver(v.IdlePower[si], cfg.Horizon) {
			continue
		}
		// Commit: execute the drain against the working state.
		for k, m := range moves {
			ti := sc.moveDst[k]
			vm, found := w.removeVM(si, m.VM)
			if !found {
				return nil, fmt.Errorf("consolidation: internal error, VM %q vanished", m.VM)
			}
			w.addVM(ti, vm)
			plan.Moves = append(plan.Moves, m)
			w.received[ti] = true
		}
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			break
		}
	}
	w.finishPlan(plan)
	return plan, nil
}

// evacuateView places the VMs named by Config.Evacuate — stranded on
// Down hosts — onto live hosts, hardest (biggest demand) first, each to
// the admissible target with the lowest predicted migration energy.
// Unlike drains, evacuations are unconditional: there is no
// all-or-nothing gate and no payback check — a stranded VM runs nowhere
// until it moves. Empty hosts ARE admissible refuge targets (waking a
// spare beats leaving a VM stranded). A VM with no admissible target
// stays put for this round; the next round retries.
func (p EnergyAware) evacuateView(w *vwork, cfg Config, plan *Plan, pinned map[string]bool) error {
	evac := cfg.evacuateSet()
	if evac == nil {
		return nil
	}
	v := w.v
	hosts := int32(v.hostCount())
	type cand struct {
		vm VMState
		si int32
	}
	var cands []cand
	for i := int32(0); i < hosts; i++ {
		if !v.Down[i] {
			continue
		}
		s, c := v.VMStart[i], v.VMCount[i]
		for k := s; k < s+c; k++ {
			if evac[v.VMName[k]] && !pinned[v.VMName[k]] {
				cands = append(cands, cand{v.vm(k), i})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].vm.BusyVCPUs != cands[j].vm.BusyVCPUs {
			return cands[i].vm.BusyVCPUs > cands[j].vm.BusyVCPUs
		}
		return cands[i].vm.Name < cands[j].vm.Name
	})
	for _, c := range cands {
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			return nil
		}
		best := int32(-1)
		var bestCost MigrationCost
		for j := int32(0); j < hosts; j++ {
			if j == c.si || v.Down[j] {
				continue
			}
			if w.busy[j]+c.vm.BusyVCPUs > float64(v.Threads[j])*cfg.CPUCap ||
				w.mem[j]+c.vm.MemBytes > v.MemCap[j] {
				continue
			}
			cost, err := p.Model.Cost(c.vm, w.busy[c.si]-c.vm.BusyVCPUs, w.busy[j])
			if err != nil {
				return err
			}
			if best < 0 || cost.Energy < bestCost.Energy {
				best = j
				bestCost = cost
			}
		}
		if best < 0 {
			continue // unplaceable this round; the next tick retries
		}
		vm, found := w.removeVM(c.si, c.vm.Name)
		if !found {
			return fmt.Errorf("consolidation: internal error, VM %q vanished", c.vm.Name)
		}
		w.addVM(best, vm)
		w.received[best] = true
		plan.Moves = append(plan.Moves, Move{VM: vm.Name, From: v.HostName[c.si], To: v.HostName[best], Cost: bestCost})
	}
	return nil
}

// considerTarget prices host j as a drain target for vm and folds it
// into the running best under the historical tie-breaking: strictly
// lower energy wins, equal energy keeps the lowest host index.
func (p EnergyAware) considerTarget(w *vwork, sc *viewDrainScratch, si, j int32, vm VMState, srcArg float64, cfg Config, best int32, bestCost MigrationCost) (int32, MigrationCost, error) {
	if j < 0 || j == si {
		return best, bestCost, nil
	}
	if w.cnt[j] == 0 || w.v.Down[j] {
		return best, bestCost, nil
	}
	busy, mem := sc.effective(w, j)
	if busy+vm.BusyVCPUs > float64(w.v.Threads[j])*cfg.CPUCap ||
		mem+vm.MemBytes > w.v.MemCap[j] {
		return best, bestCost, nil
	}
	cost, err := p.Model.Cost(vm, srcArg, busy)
	if err != nil {
		return best, bestCost, err
	}
	if best < 0 || cost.Energy < bestCost.Energy || (cost.Energy == bestCost.Energy && j < best) {
		return j, cost, nil
	}
	return best, bestCost, nil
}

// drainView plans the complete evacuation of host si, tentatively,
// against the scratch deltas — the working state itself is untouched
// until the caller commits. It returns ok=false when some VM has no
// admissible target or the move budget would be exceeded.
func (p EnergyAware) drainView(w *vwork, si int32, cfg Config, movesSoFar int, sc *viewDrainScratch, liveOrder []int32, fastOK bool) ([]Move, bool, error) {
	v := w.v
	hosts := int32(v.hostCount())
	sc.epoch++
	sc.moves = sc.moves[:0]
	sc.moveDst = sc.moveDst[:0]
	sc.tentTouched = sc.tentTouched[:0]
	sc.srcVMs = w.appendVMs(sc.srcVMs[:0], si)

	// Biggest VMs first: they are the hardest to place.
	sc.order = append(sc.order[:0], sc.srcVMs...)
	sort.Slice(sc.order, func(i, j int) bool {
		if sc.order[i].BusyVCPUs != sc.order[j].BusyVCPUs {
			return sc.order[i].BusyVCPUs > sc.order[j].BusyVCPUs
		}
		return sc.order[i].Name < sc.order[j].Name
	})

	for _, vm := range sc.order {
		if cfg.MaxMoves > 0 && movesSoFar+len(sc.moves) >= cfg.MaxMoves {
			return nil, false, nil
		}
		// The source's projected load: the residents not yet placed,
		// re-summed in list order, minus the mover itself.
		srcBusy := 0.0
		for _, r := range sc.srcVMs {
			srcBusy += r.BusyVCPUs
		}
		srcArg := srcBusy - vm.BusyVCPUs
		best := int32(-1)
		var bestCost MigrationCost
		if fastOK && srcArg >= 0 {
			// Order-indexed scan: the first admissible unmutated host in
			// busy-ascending order is the cheapest unmutated target (cost
			// monotone in destination busy; ties resolve to the lowest
			// name = lowest index under NameOrdered). Mutated hosts —
			// committed (touched) or tentative this drain (tentTouched) —
			// are bounded by the move budget and priced individually.
			// (HeuristicCost's negative-load special case flattens the
			// cost curve, so srcArg < 0 falls back to the linear scan.)
			cand := int32(-1)
			for _, j := range liveOrder {
				if j == si || w.cnt[j] == 0 || w.touchedMark[j] || sc.tentEpoch[j] == sc.epoch {
					continue
				}
				if w.busy[j]+vm.BusyVCPUs > float64(v.Threads[j])*cfg.CPUCap ||
					w.mem[j]+vm.MemBytes > v.MemCap[j] {
					continue
				}
				cand = j
				break
			}
			var err error
			best, bestCost, err = p.considerTarget(w, sc, si, cand, vm, srcArg, cfg, best, bestCost)
			if err != nil {
				return nil, false, err
			}
			for _, j := range w.touched {
				best, bestCost, err = p.considerTarget(w, sc, si, j, vm, srcArg, cfg, best, bestCost)
				if err != nil {
					return nil, false, err
				}
			}
			for _, j := range sc.tentTouched {
				if w.touchedMark[j] {
					continue // already priced above
				}
				best, bestCost, err = p.considerTarget(w, sc, si, j, vm, srcArg, cfg, best, bestCost)
				if err != nil {
					return nil, false, err
				}
			}
		} else {
			for j := int32(0); j < hosts; j++ {
				if j == si {
					continue
				}
				// Never wake an already-empty host to fill it: that defeats
				// consolidation. (Empty hosts never receive tentative adds,
				// so the resident count needs no delta tracking.) Crashed
				// hosts take no guests at all.
				if w.cnt[j] == 0 || v.Down[j] {
					continue
				}
				busy, mem := sc.effective(w, j)
				if busy+vm.BusyVCPUs > float64(v.Threads[j])*cfg.CPUCap ||
					mem+vm.MemBytes > v.MemCap[j] {
					continue
				}
				cost, err := p.Model.Cost(vm, srcArg, busy)
				if err != nil {
					return nil, false, err
				}
				if best < 0 || cost.Energy < bestCost.Energy {
					best = j
					bestCost = cost
				}
			}
		}
		if best < 0 {
			return nil, false, nil
		}
		if _, found := removeVMSlice(&sc.srcVMs, vm.Name); !found {
			return nil, false, fmt.Errorf("consolidation: internal error draining %q", vm.Name)
		}
		sc.add(w, best, vm)
		sc.moves = append(sc.moves, Move{VM: vm.Name, From: v.HostName[si], To: v.HostName[best], Cost: bestCost})
		sc.moveDst = append(sc.moveDst, best)
	}
	return sc.moves, true, nil
}

// FirstFitDecreasing is the energy-blind baseline: sort all VMs by CPU
// demand and re-pack them onto hosts first-fit, then express the result as
// moves. It is the classic bin-packing consolidation the related work uses
// and the paper's argument target — it never looks at migration energy, so
// it will happily move a 95%-dirty VM onto a busy host.
type FirstFitDecreasing struct {
	// Model, when set, prices the resulting moves (for comparison); the
	// policy itself ignores the prices.
	Model CostModel
}

// Name implements Policy.
func (FirstFitDecreasing) Name() string { return "first-fit-decreasing" }

// Plan implements Policy via the shared view planner (see
// EnergyAware.Plan).
func (p FirstFitDecreasing) Plan(hosts []HostState, cfg Config) (*Plan, error) {
	if err := validateHosts(hosts); err != nil {
		return nil, err
	}
	return p.planView(NewView(hosts), cfg)
}

// PlanView implements ViewPolicy.
func (p FirstFitDecreasing) PlanView(v *View, cfg Config) (*Plan, error) {
	if v.hostCount() < 2 {
		return nil, errors.New("consolidation: need at least two hosts")
	}
	return p.planView(v, cfg)
}

func (p FirstFitDecreasing) planView(v *View, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	plan := &Plan{}
	pinned := cfg.pinnedSet()
	evac := cfg.evacuateSet()
	n := v.hostCount()

	// Origin loads for move pricing come straight from the read-only
	// view aggregates — the same sums BusyThreads would return.
	preBusy := v.Busy

	// Gather every movable VM with its origin. Pinned VMs (in-flight
	// migrations from a previous round) are not re-packed: they keep
	// their bin below and just consume its capacity.
	type placed struct {
		vm   VMState
		from int32
	}
	var all []placed
	for i := int32(0); i < int32(n); i++ {
		s, c := v.VMStart[i], v.VMCount[i]
		for k := s; k < s+c; k++ {
			if pinned[v.VMName[k]] {
				continue
			}
			all = append(all, placed{v.vm(k), i})
		}
	}
	// Evacuees pack first — a stranded VM runs nowhere until placed, so
	// it must not lose its slot to ordinary re-packing under MaxMoves.
	sort.Slice(all, func(i, j int) bool {
		ei, ej := evac[all[i].vm.Name], evac[all[j].vm.Name]
		if ei != ej {
			return ei
		}
		if all[i].vm.BusyVCPUs != all[j].vm.BusyVCPUs {
			return all[i].vm.BusyVCPUs > all[j].vm.BusyVCPUs
		}
		return all[i].vm.Name < all[j].vm.Name
	})

	// Re-pack into empty bins in host order; pinned VMs pre-occupy their
	// current bin. Bin loads start from the pinned slots summed in slot
	// order and grow in placement order — bit-identical to re-summing
	// the bin's VM list after each placement.
	binBusy := make([]float64, n)
	binMem := make([]units.Bytes, n)
	binCnt := make([]int32, n)
	for i := 0; i < n; i++ {
		s, c := v.VMStart[i], v.VMCount[i]
		for k := s; k < s+c; k++ {
			if pinned[v.VMName[k]] {
				binBusy[i] += v.VMBusy[k]
				binMem[i] += v.VMMem[k]
				binCnt[i]++
			}
		}
	}
	for idx, pl := range all {
		// Move budget exhausted: every VM not yet processed stays where
		// it is. They must land back in their origin bins, or the freed-
		// host accounting below would report hosts as empty that still
		// run the unmoved tail of the packing order.
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			for _, rest := range all[idx:] {
				binCnt[rest.from]++
			}
			break
		}
		placedAt := int32(-1)
		for i := 0; i < n; i++ {
			if v.Down[i] {
				continue // crashed bins take no guests
			}
			if binBusy[i]+pl.vm.BusyVCPUs <= float64(v.Threads[i])*cfg.CPUCap &&
				binMem[i]+pl.vm.MemBytes <= v.MemCap[i] {
				binBusy[i] += pl.vm.BusyVCPUs
				binMem[i] += pl.vm.MemBytes
				binCnt[i]++
				placedAt = int32(i)
				break
			}
		}
		if placedAt < 0 {
			return nil, fmt.Errorf("consolidation: FFD cannot place VM %q", pl.vm.Name)
		}
		if placedAt != pl.from {
			move := Move{VM: pl.vm.Name, From: v.HostName[pl.from], To: v.HostName[placedAt]}
			if p.Model != nil {
				srcBusy := preBusy[pl.from] - pl.vm.BusyVCPUs
				dstBusy := binBusy[placedAt] - pl.vm.BusyVCPUs
				cost, err := p.Model.Cost(pl.vm, srcBusy, dstBusy)
				if err != nil {
					return nil, err
				}
				move.Cost = cost
			}
			plan.Moves = append(plan.Moves, move)
		}
	}
	for i := 0; i < n; i++ {
		if binCnt[i] == 0 && !v.Down[i] {
			plan.FreedHosts = append(plan.FreedHosts, v.HostName[i])
			plan.IdleSavings += v.IdlePower[i]
		}
	}
	sort.Strings(plan.FreedHosts)
	for _, m := range plan.Moves {
		plan.MigrationEnergy += m.Cost.Energy
	}
	return plan, nil
}

// Compile-time interface checks: both built-in policies plan directly
// against views.
var (
	_ ViewPolicy = EnergyAware{}
	_ ViewPolicy = FirstFitDecreasing{}
)
