package consolidation

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// planState is a Plan invocation's working state: the cloned hosts plus
// the bookkeeping that makes the planning loops cheap — a name index
// instead of linear scans, and per-host busy/memory aggregates so the
// admission checks in the hot candidate loops are O(1) instead of
// re-summing every resident VM.
//
// The aggregates are maintained by *re-summing a host in VM order after
// each mutation*, never by incremental subtraction: floating-point
// addition is order-sensitive, and the policies' outputs are pinned by
// golden suites, so the cached values must be bit-identical to what
// HostState.BusyThreads would return at the same point.
type planState struct {
	hosts []HostState
	index map[string]int
	busy  []float64
	mem   []units.Bytes
}

func newPlanState(hosts []HostState) *planState {
	st := &planState{
		hosts: cloneHosts(hosts),
		index: make(map[string]int, len(hosts)),
		busy:  make([]float64, len(hosts)),
		mem:   make([]units.Bytes, len(hosts)),
	}
	for i := range st.hosts {
		st.index[st.hosts[i].Name] = i
		st.recompute(i)
	}
	return st
}

// recompute refreshes a host's cached aggregates after its VM set
// changed, summing in VM order (see the planState invariant).
func (st *planState) recompute(i int) {
	st.busy[i] = st.hosts[i].BusyThreads()
	st.mem[i] = st.hosts[i].UsedMem()
}

// drainScratch is the reusable working memory of EnergyAware's
// tentative drains. One instance serves every drain of a Plan call;
// the epoch counter invalidates the per-host tentative deltas between
// drains without clearing the arrays.
type drainScratch struct {
	epoch     int
	tentEpoch []int
	tentBusy  []float64
	tentMem   []units.Bytes
	srcVMs    []VMState // src residents not yet tentatively placed
	order     []VMState // src residents, biggest first
	moves     []Move
}

func newDrainScratch(n int) *drainScratch {
	return &drainScratch{
		tentEpoch: make([]int, n),
		tentBusy:  make([]float64, n),
		tentMem:   make([]units.Bytes, n),
	}
}

// effective returns host j's busy/memory aggregates including this
// drain's tentative placements. Tentative additions are applied
// sequentially on top of the cached sum — the same left-to-right order
// a re-sum of the appended VM list would use.
func (sc *drainScratch) effective(st *planState, j int) (float64, units.Bytes) {
	if sc.tentEpoch[j] == sc.epoch {
		return sc.tentBusy[j], sc.tentMem[j]
	}
	return st.busy[j], st.mem[j]
}

// add tentatively places a VM on host j for the rest of this drain.
func (sc *drainScratch) add(st *planState, j int, vm VMState) {
	b, m := sc.effective(st, j)
	sc.tentBusy[j], sc.tentMem[j] = b+vm.BusyVCPUs, m+vm.MemBytes
	sc.tentEpoch[j] = sc.epoch
}

// EnergyAware is the paper-aligned policy: it tries to empty the least
// loaded hosts, pricing every candidate move with the migration energy
// model and choosing, per VM, the admissible target with the lowest
// predicted energy. A move is only taken when the host being drained can
// be fully emptied — half-drained hosts save nothing.
type EnergyAware struct {
	Model CostModel
}

// Name implements Policy.
func (EnergyAware) Name() string { return "energy-aware" }

// Plan implements Policy.
func (p EnergyAware) Plan(hosts []HostState, cfg Config) (*Plan, error) {
	if p.Model == nil {
		return nil, errors.New("consolidation: energy-aware policy needs a cost model")
	}
	if err := validateHosts(hosts); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	st := newPlanState(hosts)
	plan := &Plan{}
	pinned := cfg.pinnedSet()
	received := make([]bool, len(st.hosts)) // hosts that gained VMs this round

	// Evacuations come first: VMs stranded on crashed hosts are placed
	// before any consolidation work spends the move budget.
	if err := p.evacuate(st, cfg, plan, pinned, received); err != nil {
		return nil, err
	}

	// Drain candidates: least loaded first (cheapest to empty). Busy
	// totals come from the cached aggregates — the same values a
	// per-comparison re-sum would produce, without the O(H² log H)
	// name-lookup-and-re-sum the comparator used to pay.
	order := make([]int, len(st.hosts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		hi, hj := order[i], order[j]
		if st.busy[hi] != st.busy[hj] {
			return st.busy[hi] < st.busy[hj]
		}
		return st.hosts[hi].Name < st.hosts[hj].Name
	})

	sc := newDrainScratch(len(st.hosts))
	for _, si := range order {
		src := &st.hosts[si]
		if len(src.VMs) == 0 {
			continue
		}
		// A crashed host draws no idle power: emptying it frees nothing,
		// and its residents move through evacuation, not consolidation.
		if src.Down {
			continue
		}
		// A host that just received migrations is pinned for this round:
		// re-draining it would move VMs twice and burn energy for nothing.
		if received[si] {
			continue
		}
		// A host with a pinned VM (an in-flight migration from an earlier
		// round) can never be fully emptied, and a half-drain saves
		// nothing — skip it until the flight lands.
		if src.hasPinned(pinned) {
			continue
		}
		moves, ok, err := p.drain(st, si, cfg, len(plan.Moves), sc)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // cannot fully empty this host; leave it untouched
		}
		// Worth-it check: the freed idle power must amortise the drain's
		// energy within the configured horizon.
		var drainCost units.Joules
		for _, m := range moves {
			drainCost += m.Cost.Energy
		}
		if drainCost > units.EnergyOver(src.IdlePower, cfg.Horizon) {
			continue
		}
		// Commit: execute the drain against the working state.
		for _, m := range moves {
			fi, ti := st.index[m.From], st.index[m.To]
			vm, found := removeVM(&st.hosts[fi], m.VM)
			if !found {
				return nil, fmt.Errorf("consolidation: internal error, VM %q vanished", m.VM)
			}
			st.hosts[ti].VMs = append(st.hosts[ti].VMs, vm)
			st.recompute(fi)
			st.recompute(ti)
			plan.Moves = append(plan.Moves, m)
			received[ti] = true
		}
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			break
		}
	}
	finishPlan(plan, st.hosts)
	return plan, nil
}

// evacuate places the VMs named by Config.Evacuate — stranded on Down
// hosts — onto live hosts, hardest (biggest demand) first, each to the
// admissible target with the lowest predicted migration energy. Unlike
// drains, evacuations are unconditional: there is no all-or-nothing
// gate and no payback check — a stranded VM runs nowhere until it
// moves. Empty hosts ARE admissible refuge targets (waking a spare
// beats leaving a VM stranded). A VM with no admissible target stays
// put for this round; the next round retries.
func (p EnergyAware) evacuate(st *planState, cfg Config, plan *Plan, pinned map[string]bool, received []bool) error {
	evac := cfg.evacuateSet()
	if evac == nil {
		return nil
	}
	type cand struct {
		vm VMState
		si int
	}
	var cands []cand
	for i := range st.hosts {
		if !st.hosts[i].Down {
			continue
		}
		for _, v := range st.hosts[i].VMs {
			if evac[v.Name] && !pinned[v.Name] {
				cands = append(cands, cand{v, i})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].vm.BusyVCPUs != cands[j].vm.BusyVCPUs {
			return cands[i].vm.BusyVCPUs > cands[j].vm.BusyVCPUs
		}
		return cands[i].vm.Name < cands[j].vm.Name
	})
	for _, c := range cands {
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			return nil
		}
		best := -1
		var bestCost MigrationCost
		for j := range st.hosts {
			if j == c.si || st.hosts[j].Down {
				continue
			}
			if st.busy[j]+c.vm.BusyVCPUs > float64(st.hosts[j].Threads)*cfg.CPUCap ||
				st.mem[j]+c.vm.MemBytes > st.hosts[j].MemBytes {
				continue
			}
			cost, err := p.Model.Cost(c.vm, st.busy[c.si]-c.vm.BusyVCPUs, st.busy[j])
			if err != nil {
				return err
			}
			if best < 0 || cost.Energy < bestCost.Energy {
				best = j
				bestCost = cost
			}
		}
		if best < 0 {
			continue // unplaceable this round; the next tick retries
		}
		vm, found := removeVM(&st.hosts[c.si], c.vm.Name)
		if !found {
			return fmt.Errorf("consolidation: internal error, VM %q vanished", c.vm.Name)
		}
		st.hosts[best].VMs = append(st.hosts[best].VMs, vm)
		st.recompute(c.si)
		st.recompute(best)
		received[best] = true
		plan.Moves = append(plan.Moves, Move{VM: vm.Name, From: st.hosts[c.si].Name, To: st.hosts[best].Name, Cost: bestCost})
	}
	return nil
}

// drain plans the complete evacuation of host si, tentatively, against
// the scratch deltas — the working state itself is untouched until the
// caller commits. It returns ok=false when some VM has no admissible
// target or the move budget would be exceeded.
func (p EnergyAware) drain(st *planState, si int, cfg Config, movesSoFar int, sc *drainScratch) ([]Move, bool, error) {
	src := &st.hosts[si]
	sc.epoch++
	sc.moves = sc.moves[:0]
	sc.srcVMs = append(sc.srcVMs[:0], src.VMs...)

	// Biggest VMs first: they are the hardest to place. Each candidate
	// host's VM list is sorted at most once per planning round — drains
	// visit every source exactly once.
	sc.order = append(sc.order[:0], src.VMs...)
	sort.Slice(sc.order, func(i, j int) bool {
		if sc.order[i].BusyVCPUs != sc.order[j].BusyVCPUs {
			return sc.order[i].BusyVCPUs > sc.order[j].BusyVCPUs
		}
		return sc.order[i].Name < sc.order[j].Name
	})

	for _, vm := range sc.order {
		if cfg.MaxMoves > 0 && movesSoFar+len(sc.moves) >= cfg.MaxMoves {
			return nil, false, nil
		}
		// The source's projected load: the residents not yet placed,
		// re-summed in list order, minus the mover itself.
		srcBusy := 0.0
		for _, r := range sc.srcVMs {
			srcBusy += r.BusyVCPUs
		}
		best := -1
		var bestCost MigrationCost
		for j := range st.hosts {
			if j == si {
				continue
			}
			// Never wake an already-empty host to fill it: that defeats
			// consolidation. (Empty hosts never receive tentative adds, so
			// the resident count needs no delta tracking.) Crashed hosts
			// take no guests at all.
			if len(st.hosts[j].VMs) == 0 || st.hosts[j].Down {
				continue
			}
			busy, mem := sc.effective(st, j)
			if busy+vm.BusyVCPUs > float64(st.hosts[j].Threads)*cfg.CPUCap ||
				mem+vm.MemBytes > st.hosts[j].MemBytes {
				continue
			}
			cost, err := p.Model.Cost(vm, srcBusy-vm.BusyVCPUs, busy)
			if err != nil {
				return nil, false, err
			}
			if best < 0 || cost.Energy < bestCost.Energy {
				best = j
				bestCost = cost
			}
		}
		if best < 0 {
			return nil, false, nil
		}
		if _, found := removeVMSlice(&sc.srcVMs, vm.Name); !found {
			return nil, false, fmt.Errorf("consolidation: internal error draining %q", vm.Name)
		}
		sc.add(st, best, vm)
		sc.moves = append(sc.moves, Move{VM: vm.Name, From: src.Name, To: st.hosts[best].Name, Cost: bestCost})
	}
	return sc.moves, true, nil
}

// FirstFitDecreasing is the energy-blind baseline: sort all VMs by CPU
// demand and re-pack them onto hosts first-fit, then express the result as
// moves. It is the classic bin-packing consolidation the related work uses
// and the paper's argument target — it never looks at migration energy, so
// it will happily move a 95%-dirty VM onto a busy host.
type FirstFitDecreasing struct {
	// Model, when set, prices the resulting moves (for comparison); the
	// policy itself ignores the prices.
	Model CostModel
}

// Name implements Policy.
func (FirstFitDecreasing) Name() string { return "first-fit-decreasing" }

// Plan implements Policy.
func (p FirstFitDecreasing) Plan(hosts []HostState, cfg Config) (*Plan, error) {
	if err := validateHosts(hosts); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	plan := &Plan{}
	pinned := cfg.pinnedSet()
	evac := cfg.evacuateSet()

	// Pre-plan state: the input is read-only, so origin loads (for move
	// pricing) come straight from it — no working clone needed.
	index := make(map[string]int, len(hosts))
	preBusy := make([]float64, len(hosts))
	for i := range hosts {
		index[hosts[i].Name] = i
		preBusy[i] = hosts[i].BusyThreads()
	}

	// Gather every movable VM with its origin. Pinned VMs (in-flight
	// migrations from a previous round) are not re-packed: they keep
	// their bin below and just consume its capacity.
	type placed struct {
		vm   VMState
		from string
	}
	var all []placed
	for _, h := range hosts {
		for _, v := range h.VMs {
			if pinned[v.Name] {
				continue
			}
			all = append(all, placed{v, h.Name})
		}
	}
	// Evacuees pack first — a stranded VM runs nowhere until placed, so
	// it must not lose its slot to ordinary re-packing under MaxMoves.
	sort.Slice(all, func(i, j int) bool {
		ei, ej := evac[all[i].vm.Name], evac[all[j].vm.Name]
		if ei != ej {
			return ei
		}
		if all[i].vm.BusyVCPUs != all[j].vm.BusyVCPUs {
			return all[i].vm.BusyVCPUs > all[j].vm.BusyVCPUs
		}
		return all[i].vm.Name < all[j].vm.Name
	})

	// Re-pack into empty bins in host order; pinned VMs pre-occupy their
	// current bin. Bin loads are tracked as running aggregates, added in
	// placement order — bit-identical to re-summing the bin's VM list.
	bins := cloneHosts(hosts)
	binBusy := make([]float64, len(bins))
	binMem := make([]units.Bytes, len(bins))
	for i := range bins {
		kept := bins[i].VMs[:0]
		for _, v := range bins[i].VMs {
			if pinned[v.Name] {
				kept = append(kept, v)
			}
		}
		bins[i].VMs = kept
		binBusy[i] = bins[i].BusyThreads()
		binMem[i] = bins[i].UsedMem()
	}
	for idx, pl := range all {
		// Move budget exhausted: every VM not yet processed stays where
		// it is. They must land back in their origin bins, or the freed-
		// host accounting below would report hosts as empty that still
		// run the unmoved tail of the packing order.
		if cfg.MaxMoves > 0 && len(plan.Moves) >= cfg.MaxMoves {
			for _, rest := range all[idx:] {
				origin := &bins[index[rest.from]]
				origin.VMs = append(origin.VMs, rest.vm)
			}
			break
		}
		placedAt := -1
		for i := range bins {
			if bins[i].Down {
				continue // crashed bins take no guests
			}
			if binBusy[i]+pl.vm.BusyVCPUs <= float64(bins[i].Threads)*cfg.CPUCap &&
				binMem[i]+pl.vm.MemBytes <= bins[i].MemBytes {
				bins[i].VMs = append(bins[i].VMs, pl.vm)
				binBusy[i] += pl.vm.BusyVCPUs
				binMem[i] += pl.vm.MemBytes
				placedAt = i
				break
			}
		}
		if placedAt < 0 {
			return nil, fmt.Errorf("consolidation: FFD cannot place VM %q", pl.vm.Name)
		}
		if bins[placedAt].Name != pl.from {
			move := Move{VM: pl.vm.Name, From: pl.from, To: bins[placedAt].Name}
			if p.Model != nil {
				srcBusy := preBusy[index[pl.from]] - pl.vm.BusyVCPUs
				dstBusy := binBusy[placedAt] - pl.vm.BusyVCPUs
				cost, err := p.Model.Cost(pl.vm, srcBusy, dstBusy)
				if err != nil {
					return nil, err
				}
				move.Cost = cost
			}
			plan.Moves = append(plan.Moves, move)
		}
	}
	finishPlan(plan, bins)
	return plan, nil
}
