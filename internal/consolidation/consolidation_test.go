package consolidation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

// stubModel prices migrations with the qualitative behaviour of WAVM3:
// cost grows with memory, dirty ratio (live retransmission) and target
// load (reduced bandwidth → longer transfer).
type stubModel struct {
	calls int
}

func (s *stubModel) Cost(vm VMState, srcBusy, dstBusy float64) (MigrationCost, error) {
	s.calls++
	gb := float64(vm.MemBytes) / float64(units.GiB)
	expansion := 1 + 2*float64(vm.DirtyRatio)
	slowdown := 1 + dstBusy/32 + srcBusy/64
	joules := 15_000 * gb * expansion * slowdown
	return MigrationCost{
		Energy:   units.Joules(joules),
		Duration: time.Duration(40 * expansion * slowdown * float64(time.Second)),
	}, nil
}

func gib(n int) units.Bytes { return units.Bytes(n) * units.GiB }

// smallDC: three hosts; host c runs one small VM and can be emptied.
func smallDC() []HostState {
	return []HostState{
		{Name: "a", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "db", MemBytes: gib(4), BusyVCPUs: 8, DirtyRatio: 0.6},
			{Name: "web", MemBytes: gib(4), BusyVCPUs: 4, DirtyRatio: 0.1},
		}},
		{Name: "b", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "batch", MemBytes: gib(4), BusyVCPUs: 6, DirtyRatio: 0.05},
		}},
		{Name: "c", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "cache", MemBytes: gib(4), BusyVCPUs: 2, DirtyRatio: 0.9},
		}},
	}
}

func TestValidation(t *testing.T) {
	if err := (VMState{}).Validate(); err == nil {
		t.Error("empty VM must fail")
	}
	if err := (VMState{Name: "x", MemBytes: 1, DirtyRatio: 2}).Validate(); err == nil {
		t.Error("bad dirty ratio must fail")
	}
	if err := (HostState{}).Validate(); err == nil {
		t.Error("empty host must fail")
	}
	dup := HostState{Name: "h", Threads: 4, MemBytes: gib(8), IdlePower: 100, VMs: []VMState{
		{Name: "v", MemBytes: 1, BusyVCPUs: 1}, {Name: "v", MemBytes: 1, BusyVCPUs: 1},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate VM on host must fail")
	}
	if err := validateHosts([]HostState{smallDC()[0]}); err == nil {
		t.Error("single host must fail")
	}
	two := smallDC()[:2]
	two[1].VMs = append(two[1].VMs, two[0].VMs[0]) // same VM on both hosts
	if err := validateHosts(two); err == nil {
		t.Error("VM on two hosts must fail")
	}
}

func TestHostAccounting(t *testing.T) {
	h := smallDC()[0]
	if h.BusyThreads() != 12 {
		t.Errorf("busy = %v, want 12", h.BusyThreads())
	}
	if h.UsedMem() != gib(8) {
		t.Errorf("used mem = %v, want 8 GiB", h.UsedMem())
	}
	vm := VMState{Name: "n", MemBytes: gib(4), BusyVCPUs: 16}
	if !h.fits(vm, 0.9) {
		t.Error("12+16 = 28 of 28.8 cap should fit")
	}
	if h.fits(VMState{Name: "n2", MemBytes: gib(4), BusyVCPUs: 17}, 0.9) {
		t.Error("29 of 28.8 cap must not fit")
	}
	if h.fits(VMState{Name: "n3", MemBytes: gib(25), BusyVCPUs: 1}, 0.9) {
		t.Error("memory overflow must not fit")
	}
}

func TestEnergyAwareEmptiesLeastLoadedHost(t *testing.T) {
	model := &stubModel{}
	plan, err := EnergyAware{Model: model}.Plan(smallDC(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Host c (one 2-vCPU VM) is the cheapest to empty and must be freed.
	if len(plan.FreedHosts) == 0 {
		t.Fatal("plan freed no hosts")
	}
	freedC := false
	for _, f := range plan.FreedHosts {
		if f == "c" {
			freedC = true
		}
	}
	if !freedC {
		t.Errorf("freed %v, expected the least-loaded host c among them", plan.FreedHosts)
	}
	if plan.IdleSavings != 440*units.Watts(len(plan.FreedHosts)) {
		t.Errorf("idle savings = %v", plan.IdleSavings)
	}
	if plan.MigrationEnergy <= 0 {
		t.Error("moves must have positive energy")
	}
	// The input state is never mutated.
	dc := smallDC()
	if len(dc[2].VMs) != 1 {
		t.Error("input mutated")
	}
	// Payback is well-defined.
	pb, err := plan.Payback()
	if err != nil {
		t.Fatal(err)
	}
	if pb <= 0 {
		t.Errorf("payback = %v", pb)
	}
	if model.calls == 0 {
		t.Error("cost model never consulted")
	}
}

func TestEnergyAwarePicksCheapestTarget(t *testing.T) {
	// Two possible targets: an idle-ish host and a busy host. The policy
	// must route the drained VM to the cheaper (less busy) target.
	hosts := []HostState{
		{Name: "drainme", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "vm", MemBytes: gib(4), BusyVCPUs: 2, DirtyRatio: 0.9},
		}},
		{Name: "calm", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "x", MemBytes: gib(4), BusyVCPUs: 4},
		}},
		{Name: "busy", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "y", MemBytes: gib(4), BusyVCPUs: 24},
		}},
	}
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var moved *Move
	for i := range plan.Moves {
		if plan.Moves[i].VM == "vm" {
			moved = &plan.Moves[i]
		}
	}
	if moved == nil {
		t.Fatal("vm was not moved")
	}
	if moved.To != "calm" {
		t.Errorf("high-DR VM routed to %q, want the calm host (paper's advice)", moved.To)
	}
}

func TestEnergyAwareRespectsCapacity(t *testing.T) {
	// Both potential targets are nearly full: the drain must be abandoned
	// and the plan empty.
	hosts := []HostState{
		{Name: "a", Threads: 8, MemBytes: gib(8), IdlePower: 300, VMs: []VMState{
			{Name: "v1", MemBytes: gib(4), BusyVCPUs: 4},
		}},
		{Name: "b", Threads: 8, MemBytes: gib(8), IdlePower: 300, VMs: []VMState{
			{Name: "v2", MemBytes: gib(4), BusyVCPUs: 7},
		}},
		{Name: "c", Threads: 8, MemBytes: gib(8), IdlePower: 300, VMs: []VMState{
			{Name: "v3", MemBytes: gib(4), BusyVCPUs: 7},
		}},
	}
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || len(plan.FreedHosts) != 0 {
		t.Errorf("infeasible drain produced moves: %+v", plan)
	}
	if _, err := plan.Payback(); err == nil {
		t.Error("payback of a no-op plan must error")
	}
}

func TestEnergyAwareNeverWakesEmptyHost(t *testing.T) {
	hosts := []HostState{
		{Name: "a", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "v", MemBytes: gib(4), BusyVCPUs: 2},
		}},
		{Name: "empty", Threads: 32, MemBytes: gib(32), IdlePower: 440},
		{Name: "b", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "w", MemBytes: gib(4), BusyVCPUs: 4},
		}},
	}
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		if m.To == "empty" {
			t.Errorf("policy woke an empty host: %+v", m)
		}
	}
}

func TestEnergyAwareMaxMoves(t *testing.T) {
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(smallDC(), Config{MaxMoves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) > 1 {
		t.Errorf("plan has %d moves, cap was 1", len(plan.Moves))
	}
}

func TestEnergyAwareNeedsModel(t *testing.T) {
	if _, err := (EnergyAware{}).Plan(smallDC(), Config{}); err == nil {
		t.Error("missing model must fail")
	}
}

func TestFirstFitDecreasingMakesTheBadMove(t *testing.T) {
	// The paper's argument target: FFD's first-fit order sends the
	// high-dirty-ratio VM to the first host with room — the busy one —
	// while the energy-aware policy routes it to the calm host.
	hosts := []HostState{
		{Name: "busy", Threads: 32, MemBytes: gib(64), IdlePower: 440, VMs: []VMState{
			{Name: "y", MemBytes: gib(4), BusyVCPUs: 20},
		}},
		{Name: "calm", Threads: 32, MemBytes: gib(64), IdlePower: 440, VMs: []VMState{
			{Name: "x", MemBytes: gib(4), BusyVCPUs: 4},
		}},
		{Name: "drainme", Threads: 32, MemBytes: gib(64), IdlePower: 440, VMs: []VMState{
			{Name: "dirty", MemBytes: gib(4), BusyVCPUs: 2, DirtyRatio: 0.95},
		}},
	}
	ffd, err := FirstFitDecreasing{Model: &stubModel{}}.Plan(hosts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	findMove := func(p *Plan, vm string) *Move {
		for i := range p.Moves {
			if p.Moves[i].VM == vm {
				return &p.Moves[i]
			}
		}
		return nil
	}
	fm := findMove(ffd, "dirty")
	em := findMove(ea, "dirty")
	if fm == nil || em == nil {
		t.Fatalf("dirty VM not moved by both policies (ffd=%v ea=%v)", fm, em)
	}
	if fm.To != "busy" {
		t.Errorf("FFD routed dirty VM to %q; this topology should bait it to the busy host", fm.To)
	}
	if em.To != "calm" {
		t.Errorf("energy-aware routed dirty VM to %q, want the calm host", em.To)
	}
	if em.Cost.Energy >= fm.Cost.Energy {
		t.Errorf("energy-aware move (%v) must be cheaper than FFD's (%v)", em.Cost.Energy, fm.Cost.Energy)
	}
	if (FirstFitDecreasing{}).Name() != "first-fit-decreasing" ||
		(EnergyAware{}).Name() != "energy-aware" {
		t.Error("policy names wrong")
	}
}

func TestEnergyAwareHorizonGatesDrains(t *testing.T) {
	// With a one-second horizon no drain can amortise and the plan is
	// empty; with a generous horizon the same state consolidates.
	tight, err := EnergyAware{Model: &stubModel{}}.Plan(smallDC(), Config{Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Moves) != 0 {
		t.Errorf("1 s horizon still produced %d moves", len(tight.Moves))
	}
	wide, err := EnergyAware{Model: &stubModel{}}.Plan(smallDC(), Config{Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Moves) == 0 {
		t.Error("24 h horizon should allow consolidation")
	}
}

func TestEnergyAwareNeverMovesVMTwice(t *testing.T) {
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(smallDC(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range plan.Moves {
		if seen[m.VM] {
			t.Errorf("VM %q moved twice in one round", m.VM)
		}
		seen[m.VM] = true
	}
}

func TestFFDInfeasible(t *testing.T) {
	hosts := []HostState{
		{Name: "a", Threads: 2, MemBytes: gib(4), IdlePower: 100, VMs: []VMState{
			{Name: "v1", MemBytes: gib(4), BusyVCPUs: 2},
		}},
		{Name: "b", Threads: 2, MemBytes: gib(4), IdlePower: 100, VMs: []VMState{
			{Name: "v2", MemBytes: gib(4), BusyVCPUs: 2},
		}},
	}
	// CPUCap 0.9 makes every VM (2 of 1.8 allowed) unplaceable.
	if _, err := (FirstFitDecreasing{}).Plan(hosts, Config{}); err == nil {
		t.Error("unplaceable VM must fail")
	} else if !strings.Contains(err.Error(), "cannot place") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPlanAppliesToConsistentState(t *testing.T) {
	// Executing the plan against a copy must leave every VM placed exactly
	// once and freed hosts genuinely empty.
	plan, err := EnergyAware{Model: &stubModel{}}.Plan(smallDC(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	state := cloneHosts(smallDC())
	for _, m := range plan.Moves {
		vm, ok := removeVM(hostByName(state, m.From), m.VM)
		if !ok {
			t.Fatalf("move %v references VM not on its source", m)
		}
		dst := hostByName(state, m.To)
		dst.VMs = append(dst.VMs, vm)
	}
	count := 0
	for _, h := range state {
		count += len(h.VMs)
		for _, f := range plan.FreedHosts {
			if h.Name == f && len(h.VMs) != 0 {
				t.Errorf("freed host %s still has %d VMs", f, len(h.VMs))
			}
		}
	}
	if count != 4 {
		t.Errorf("VM count after plan = %d, want 4", count)
	}
}

// TestPlanInvariantsProperty fuzzes random data centres and checks the
// structural invariants of every produced plan: moves reference real VMs,
// no VM moves twice, freed hosts are genuinely empty after applying the
// plan, and no host exceeds its CPU cap or memory.
func TestPlanInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nHosts := 2 + rng.Intn(5)
		hosts := make([]HostState, nHosts)
		vmID := 0
		for i := range hosts {
			hosts[i] = HostState{
				Name:      fmt.Sprintf("h%d", i),
				Threads:   32,
				MemBytes:  gib(32),
				IdlePower: 440,
			}
			for v := 0; v < rng.Intn(4); v++ {
				hosts[i].VMs = append(hosts[i].VMs, VMState{
					Name:       fmt.Sprintf("vm%d", vmID),
					MemBytes:   gib(1 + rng.Intn(4)),
					BusyVCPUs:  float64(1 + rng.Intn(8)),
					DirtyRatio: units.Fraction(rng.Float64()),
				})
				vmID++
			}
		}
		cfg := Config{CPUCap: 0.9, Horizon: 24 * time.Hour}
		plan, err := EnergyAware{Model: &stubModel{}}.Plan(hosts, cfg)
		if err != nil {
			return false
		}
		// Apply the plan.
		state := cloneHosts(hosts)
		seen := map[string]bool{}
		for _, m := range plan.Moves {
			if seen[m.VM] {
				return false // moved twice
			}
			seen[m.VM] = true
			vm, ok := removeVM(hostByName(state, m.From), m.VM)
			if !ok {
				return false // move references a VM not on its source
			}
			dst := hostByName(state, m.To)
			if dst == nil {
				return false
			}
			dst.VMs = append(dst.VMs, vm)
		}
		// Post-plan feasibility.
		for _, h := range state {
			if h.BusyThreads() > float64(h.Threads)*cfg.CPUCap+1e-9 {
				return false
			}
			if h.UsedMem() > h.MemBytes {
				return false
			}
		}
		// Freed hosts are empty.
		for _, fh := range plan.FreedHosts {
			if len(hostByName(state, fh).VMs) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
