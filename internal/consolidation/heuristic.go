package consolidation

import (
	"time"

	"repro/internal/units"
)

// HeuristicCost is a deterministic, closed-form migration cost model for
// planning contexts where no trained estimator is available — declarative
// cluster scenarios must stay pure data, and a trained WAVM3 estimator is
// Go state. It captures the qualitative structure the paper establishes:
// cost scales with the VM memory image (what a migration must move),
// grows with the dirty ratio (pre-copy retransmission, up to the 3x data
// valve), and grows with load on either endpoint (a starved migration
// helper lowers the achievable bandwidth and stretches the transfer).
// The constants are calibrated to the simulated m-pair testbed: an
// unloaded 4 GiB live migration lands in the tens of kilojoules, as in
// the paper's Figures 3–5. Plans priced with it are heuristics; the
// execution layer still *measures* every move on the simulated testbed.
type HeuristicCost struct{}

// Heuristic calibration constants (per GiB of VM memory, unloaded).
const (
	heuristicJoulesPerGiB  = 15_000.0
	heuristicSecondsPerGiB = 10.0
)

// Cost implements CostModel.
func (HeuristicCost) Cost(vm VMState, srcBusy, dstBusy float64) (MigrationCost, error) {
	gb := float64(vm.MemBytes) / float64(units.GiB)
	// Retransmission expansion: a fully dirty image approaches the 3x valve.
	expansion := 1 + 2*float64(vm.DirtyRatio)
	// Bandwidth loss from CPU contention; the target side weighs double
	// (the restore helper competes with the resident load directly).
	slowdown := 1 + dstBusy/32 + srcBusy/64
	if srcBusy < 0 || dstBusy < 0 {
		slowdown = 1
	}
	return MigrationCost{
		Energy:   units.Joules(heuristicJoulesPerGiB * gb * expansion * slowdown),
		Duration: time.Duration(heuristicSecondsPerGiB * gb * expansion * slowdown * float64(time.Second)),
	}, nil
}
