package consolidation

import (
	"testing"
	"time"
)

// This file is the degenerate-input matrix for the consolidation
// policies: the shapes a periodic re-planner feeds them that a one-shot
// caller never does — single hosts, already-consolidated clusters, no
// admissible target, and ticks that fire while the previous plan's
// migrations are still in flight.

func policies() []Policy {
	return []Policy{
		EnergyAware{Model: HeuristicCost{}},
		FirstFitDecreasing{Model: HeuristicCost{}},
	}
}

func TestPoliciesSingleHost(t *testing.T) {
	// One host is not a consolidation problem; both policies must refuse
	// loudly rather than return a misleading empty plan.
	single := []HostState{smallDC()[0]}
	for _, p := range policies() {
		if _, err := p.Plan(single, Config{}); err == nil {
			t.Errorf("%s accepted a single-host cluster", p.Name())
		}
	}
}

func TestPoliciesAlreadyConsolidated(t *testing.T) {
	// Everything already packed onto one host: no policy may invent work.
	hosts := []HostState{
		{Name: "packed", Threads: 32, MemBytes: gib(32), IdlePower: 440, VMs: []VMState{
			{Name: "a", MemBytes: gib(4), BusyVCPUs: 8, DirtyRatio: 0.2},
			{Name: "b", MemBytes: gib(4), BusyVCPUs: 6, DirtyRatio: 0.1},
		}},
		{Name: "off1", Threads: 32, MemBytes: gib(32), IdlePower: 440},
		{Name: "off2", Threads: 32, MemBytes: gib(32), IdlePower: 440},
	}
	for _, p := range policies() {
		plan, err := p.Plan(hosts, Config{Horizon: 24 * time.Hour})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(plan.Moves) != 0 {
			t.Errorf("%s planned %d moves on an already-consolidated cluster", p.Name(), len(plan.Moves))
		}
		if len(plan.FreedHosts) != 2 {
			t.Errorf("%s reports freed hosts %v, want the two empty ones", p.Name(), plan.FreedHosts)
		}
	}
}

// oversubscribedDC has every VM demanding more than any host's 0.9 CPU
// cap (7.5 busy of 8 threads, cap 7.2): no VM has an admissible target
// anywhere — not even the bin it came from.
func oversubscribedDC() []HostState {
	mk := func(name, vm string) HostState {
		return HostState{Name: name, Threads: 8, MemBytes: gib(8), IdlePower: 300, VMs: []VMState{
			{Name: vm, MemBytes: gib(4), BusyVCPUs: 7.5, DirtyRatio: 0.3},
		}}
	}
	return []HostState{mk("a", "v1"), mk("b", "v2"), mk("c", "v3")}
}

func TestPoliciesNoAdmissibleTarget(t *testing.T) {
	// The energy-aware policy abandons infeasible drains and returns an
	// empty plan; FFD's repack cannot place the VMs at all and must say so.
	plan, err := EnergyAware{Model: HeuristicCost{}}.Plan(oversubscribedDC(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || len(plan.FreedHosts) != 0 {
		t.Errorf("energy-aware produced a plan with no admissible targets: %+v", plan)
	}
	if _, err := (FirstFitDecreasing{}).Plan(oversubscribedDC(), Config{}); err == nil {
		t.Error("FFD must fail when no bin can take a VM")
	}
}

func TestEnergyAwareRespectsPinnedVMs(t *testing.T) {
	// A re-planning tick fires while "cache" (host c) is still migrating:
	// pinning it must stop the policy from draining c, while the rest of
	// the cluster remains fair game.
	cfg := Config{Horizon: 24 * time.Hour, Pinned: []string{"cache"}}
	plan, err := EnergyAware{Model: HeuristicCost{}}.Plan(smallDC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		if m.VM == "cache" {
			t.Errorf("pinned VM planned to move: %+v", m)
		}
	}
	for _, f := range plan.FreedHosts {
		if f == "c" {
			t.Error("host holding a pinned VM reported as freed")
		}
	}
	// Without the pin the same state drains host c (guards the fixture).
	free, err := EnergyAware{Model: HeuristicCost{}}.Plan(smallDC(), Config{Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	movedCache := false
	for _, m := range free.Moves {
		movedCache = movedCache || m.VM == "cache"
	}
	if !movedCache {
		t.Error("fixture drift: unpinned state no longer moves the cache VM")
	}
}

func TestFFDRespectsPinnedVMs(t *testing.T) {
	hosts := smallDC()
	cfg := Config{Pinned: []string{"cache", "db"}}
	plan, err := FirstFitDecreasing{Model: HeuristicCost{}}.Plan(hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Moves {
		if m.VM == "cache" || m.VM == "db" {
			t.Errorf("pinned VM re-packed: %+v", m)
		}
	}
	// Pinned VMs still occupy their bins: with host a's "db" pinned in
	// place, the repack must never overfill host a past its cap.
	state := cloneHosts(hosts)
	for _, m := range plan.Moves {
		vm, ok := removeVM(hostByName(state, m.From), m.VM)
		if !ok {
			t.Fatalf("move %+v references a VM not on its source", m)
		}
		hostByName(state, m.To).VMs = append(hostByName(state, m.To).VMs, vm)
	}
	for _, h := range state {
		if h.BusyThreads() > float64(h.Threads)*0.9+1e-9 {
			t.Errorf("host %s oversubscribed after pinned repack: %v busy", h.Name, h.BusyThreads())
		}
	}
}

func TestPinnedUnknownNamesIgnored(t *testing.T) {
	// Pinning a name that matches nothing (a reservation that never
	// materialised) must not change the outcome.
	base, err := EnergyAware{Model: HeuristicCost{}}.Plan(smallDC(), Config{Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ghost, err := EnergyAware{Model: HeuristicCost{}}.Plan(smallDC(), Config{Horizon: 24 * time.Hour, Pinned: []string{"no-such-vm"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Moves) != len(ghost.Moves) {
		t.Errorf("ghost pin changed the plan: %d vs %d moves", len(base.Moves), len(ghost.Moves))
	}
}

// TestFFDMaxMovesAccounting: when the move budget truncates the repack,
// the not-yet-processed VMs stay where they are — and the plan's freed-
// host accounting must reflect that, not the fictional full repack.
func TestFFDMaxMovesAccounting(t *testing.T) {
	hosts := []HostState{
		{Name: "a", Threads: 32, MemBytes: gib(32), IdlePower: 400, VMs: []VMState{
			{Name: "v1", MemBytes: gib(4), BusyVCPUs: 8},
		}},
		{Name: "b", Threads: 32, MemBytes: gib(32), IdlePower: 400, VMs: []VMState{
			{Name: "v2", MemBytes: gib(4), BusyVCPUs: 2},
		}},
		{Name: "c", Threads: 32, MemBytes: gib(32), IdlePower: 400, VMs: []VMState{
			{Name: "v3", MemBytes: gib(4), BusyVCPUs: 1},
		}},
	}
	plan, err := FirstFitDecreasing{}.Plan(hosts, Config{MaxMoves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 {
		t.Fatalf("moves = %+v, want exactly 1 under the cap", plan.Moves)
	}
	// Apply the plan; only hosts actually emptied may be reported freed.
	state := cloneHosts(hosts)
	for _, m := range plan.Moves {
		vm, ok := removeVM(hostByName(state, m.From), m.VM)
		if !ok {
			t.Fatalf("move %+v references a VM not on its source", m)
		}
		hostByName(state, m.To).VMs = append(hostByName(state, m.To).VMs, vm)
	}
	for _, f := range plan.FreedHosts {
		if n := len(hostByName(state, f).VMs); n != 0 {
			t.Errorf("host %s reported freed but still runs %d VM(s)", f, n)
		}
	}
}

func TestHeuristicCostOrdering(t *testing.T) {
	// The closed-form model must reproduce the paper's qualitative
	// ordering: dirtier is dearer, busier targets are dearer.
	m := HeuristicCost{}
	clean, _ := m.Cost(VMState{Name: "v", MemBytes: gib(4), DirtyRatio: 0.05}, 0, 0)
	dirty, _ := m.Cost(VMState{Name: "v", MemBytes: gib(4), DirtyRatio: 0.95}, 0, 0)
	if dirty.Energy <= clean.Energy {
		t.Errorf("dirty VM (%v) not dearer than clean (%v)", dirty.Energy, clean.Energy)
	}
	idle, _ := m.Cost(VMState{Name: "v", MemBytes: gib(4), DirtyRatio: 0.5}, 0, 0)
	busy, _ := m.Cost(VMState{Name: "v", MemBytes: gib(4), DirtyRatio: 0.5}, 0, 24)
	if busy.Energy <= idle.Energy || busy.Duration <= idle.Duration {
		t.Errorf("busy target (%v/%v) not dearer than idle (%v/%v)",
			busy.Energy, busy.Duration, idle.Energy, idle.Duration)
	}
}
