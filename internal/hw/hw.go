// Package hw models the physical machines of the paper's testbed
// (Table IIc) and, crucially, the *ground truth* their AC-side power meters
// measured. The paper's regression learns a linear projection of a messy
// physical reality; our substitute reality is a component-level power model
// that is strictly richer than any of the fitted forms — per-thread CPU
// power with a mild super-linear utilisation exponent, memory-traffic
// power, NIC power, a migration-orchestration overhead and PSU loss — so
// that fitting linear models against it is exactly as lossy as it was
// against the real machines.
package hw

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// PowerProfile is the component power model of one machine. All wattages
// are DC-side contributions; the AC-side value the meter sees is scaled by
// the PSU efficiency.
type PowerProfile struct {
	// Idle is the power drawn with no load at all.
	Idle units.Watts
	// CPUPerThread is the additional power of one fully busy hardware
	// thread at the linear point.
	CPUPerThread units.Watts
	// CPUExponent κ bends the aggregate CPU power curve slightly upward
	// (κ > 1), the effect the linear models cannot capture exactly.
	CPUExponent float64
	// MemPerGBs is the power per GB/s of memory traffic (page dirtying and
	// state copying both generate it).
	MemPerGBs units.Watts
	// NICActive is the power of the NIC at full line rate; scaled linearly
	// with utilisation below that.
	NICActive units.Watts
	// MigOverhead is the orchestration cost while the hypervisor is
	// actively managing a migration endpoint (toolstack, page-table
	// walking, shadow mode). The paper's initiation peaks come from this.
	MigOverhead units.Watts
	// PSUEfficiency converts DC to AC: meterPower = dcPower / PSUEfficiency.
	PSUEfficiency float64
}

// Load is the instantaneous component activity of one host, the input to
// the ground-truth power function.
type Load struct {
	// CPU is the number of busy hardware threads (after the hypervisor's
	// capacity cap, so CPU ≤ machine threads).
	CPU units.Utilisation
	// MemGBs is the memory traffic in GB/s.
	MemGBs float64
	// NetFrac is the fraction of the NIC line rate in use.
	NetFrac units.Fraction
	// MigActive reports whether this host is an endpoint of an in-flight
	// migration.
	MigActive bool
}

// MachineSpec describes one physical machine from Table IIc.
type MachineSpec struct {
	// Name is the testbed machine name: m01, m02, o1, o2.
	Name string
	// Threads is the number of hardware threads ("available virtual cpus"
	// in the paper's table: 32 for m01/m02, 40 for o1/o2).
	Threads int
	// RAM is the installed physical memory.
	RAM units.Bytes
	// NIC and Switch are the networking components (informational).
	NIC, Switch string
	// LinkRate is the NIC line rate.
	LinkRate units.BitsPerSecond
	// MigrationRate is the peak bandwidth the Xen migration path actually
	// achieves on this hardware with an unloaded CPU (always below line
	// rate; depends on NIC/driver, cf. the paper's Fig. 4d remark that
	// some transfer-time differences are "mostly related to hardware
	// configuration").
	MigrationRate units.BitsPerSecond
	// XenVersion is the hypervisor version (4.2.5 for all testbed hosts).
	XenVersion string
	// Power is the machine's ground-truth power model.
	Power PowerProfile
}

// Capacity returns the CPU capacity in busy-thread units.
func (m MachineSpec) Capacity() units.Utilisation { return units.Utilisation(m.Threads) }

// TruePower evaluates the ground-truth instantaneous AC-side power for a
// component load. This is what the (simulated) Voltech meters sample.
func (m MachineSpec) TruePower(l Load) units.Watts {
	p := m.Power
	cpu := float64(l.CPU.Clamp(m.Capacity()))
	// Aggregate CPU power: linear per busy thread with a mild convex bend.
	// At full load this evaluates to CPUPerThread·Threads exactly; below it
	// the κ exponent makes the curve slightly sub-linear per thread at low
	// counts and super-linear near saturation (shared caches, memory
	// controllers and fans ramping).
	frac := cpu / float64(m.Threads)
	cpuPower := float64(p.CPUPerThread) * float64(m.Threads) * math.Pow(frac, p.CPUExponent)

	memPower := float64(p.MemPerGBs) * l.MemGBs
	nicPower := float64(p.NICActive) * float64(l.NetFrac.Clamp())
	migPower := 0.0
	if l.MigActive {
		migPower = float64(p.MigOverhead)
	}
	dc := float64(p.Idle) + cpuPower + memPower + nicPower + migPower
	eff := p.PSUEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return units.Watts(dc / eff)
}

// IdlePower returns the AC-side power of the unloaded machine — the bias
// the paper subtracts when porting coefficients between machine pairs
// (its C1 → C2 correction).
func (m MachineSpec) IdlePower() units.Watts {
	return m.TruePower(Load{})
}

// Validate checks the spec for physically meaningful values.
func (m MachineSpec) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("hw: machine has no name")
	case m.Threads <= 0:
		return fmt.Errorf("hw: %s has %d threads", m.Name, m.Threads)
	case m.RAM <= 0:
		return fmt.Errorf("hw: %s has no RAM", m.Name)
	case m.LinkRate <= 0:
		return fmt.Errorf("hw: %s has no link rate", m.Name)
	case m.MigrationRate <= 0 || m.MigrationRate > m.LinkRate:
		return fmt.Errorf("hw: %s migration rate %v outside (0, %v]", m.Name, m.MigrationRate, m.LinkRate)
	case m.Power.Idle <= 0:
		return fmt.Errorf("hw: %s has no idle power", m.Name)
	case m.Power.CPUExponent < 1:
		return fmt.Errorf("hw: %s CPU exponent %v < 1", m.Name, m.Power.CPUExponent)
	case m.Power.PSUEfficiency <= 0 || m.Power.PSUEfficiency > 1:
		return fmt.Errorf("hw: %s PSU efficiency %v outside (0,1]", m.Name, m.Power.PSUEfficiency)
	}
	return nil
}
