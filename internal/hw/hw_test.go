package hw

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func m01(t *testing.T) MachineSpec {
	t.Helper()
	m, ok := Catalog()["m01"]
	if !ok {
		t.Fatal("m01 missing from catalog")
	}
	return m
}

func TestCatalogMatchesTableIIc(t *testing.T) {
	cat := Catalog()
	// The paper's four machines plus the h1 extension machine.
	if len(cat) != 5 {
		t.Fatalf("catalog has %d machines, want 5", len(cat))
	}
	for _, name := range []string{"m01", "m02", "o1", "o2", "h1"} {
		if _, ok := cat[name]; !ok {
			t.Fatalf("catalog missing %s", name)
		}
	}
	for name, m := range cat {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if m.XenVersion != "4.2.5" {
			t.Errorf("%s Xen version = %s, want 4.2.5", name, m.XenVersion)
		}
		if m.LinkRate != units.Gbps {
			t.Errorf("%s link = %v, want 1 Gbit/s", name, m.LinkRate)
		}
	}
	if cat["m01"].Threads != 32 || cat["m02"].Threads != 32 {
		t.Error("m-pair must have 32 threads (16×Opteron 8356, dual threaded)")
	}
	if cat["o1"].Threads != 40 || cat["o2"].Threads != 40 {
		t.Error("o-pair must have 40 threads (20×Xeon E5-2690, dual threaded)")
	}
	if cat["m01"].RAM != 32*units.GiB {
		t.Errorf("m01 RAM = %v, want 32 GiB", cat["m01"].RAM)
	}
	if cat["o1"].RAM != 128*units.GiB {
		t.Errorf("o1 RAM = %v, want 128 GiB", cat["o1"].RAM)
	}
	// Homogeneity within each pair (Xen requirement).
	if cat["m01"].Power != cat["m02"].Power || cat["m01"].Threads != cat["m02"].Threads {
		t.Error("m01 and m02 must be homogeneous")
	}
	if cat["o1"].Power != cat["o2"].Power || cat["o1"].Threads != cat["o2"].Threads {
		t.Error("o1 and o2 must be homogeneous")
	}
}

func TestPair(t *testing.T) {
	s, d, err := Pair(PairM)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "m01" || d.Name != "m02" {
		t.Errorf("PairM = (%s, %s), want (m01, m02)", s.Name, d.Name)
	}
	s, d, err = Pair(PairO)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "o1" || d.Name != "o2" {
		t.Errorf("PairO = (%s, %s), want (o1, o2)", s.Name, d.Name)
	}
	if _, _, err := Pair("nonsense"); err == nil {
		t.Error("unknown pair must fail")
	}
	if got := PairNames(); len(got) != 2 || got[0] != PairM || got[1] != PairO {
		t.Errorf("PairNames = %v", got)
	}
}

func TestCustomPair(t *testing.T) {
	// "src/dst" selects an arbitrary — possibly heterogeneous — pair.
	s, d, err := Pair("m01/h1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "m01" || d.Name != "h1" {
		t.Errorf("custom pair = (%s, %s), want (m01, h1)", s.Name, d.Name)
	}
	// A catalog entry is a model, not a box: "m01/m01" is two physical
	// instances of the same model (a homogeneous cluster pair).
	s, d, err = Pair("m01/m01")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "m01" || d.Name != "m01" {
		t.Errorf("same-model pair = (%s, %s), want (m01, m01)", s.Name, d.Name)
	}
	for _, bad := range []string{"m01/nope", "nope/m01", "m01/"} {
		if _, _, err := Pair(bad); err == nil {
			t.Errorf("custom pair %q accepted, want error", bad)
		}
	}
}

func TestTruePowerMonotoneInCPU(t *testing.T) {
	m := m01(t)
	f := func(a, b uint8) bool {
		ua := units.Utilisation(float64(a) / 255 * 32)
		ub := units.Utilisation(float64(b) / 255 * 32)
		if ua > ub {
			ua, ub = ub, ua
		}
		pa := m.TruePower(Load{CPU: ua})
		pb := m.TruePower(Load{CPU: ub})
		return pa <= pb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruePowerBand(t *testing.T) {
	// The m-pair ground truth must stay in the paper's plotted band:
	// idle above 400 W, and fully loaded (migration + full net + heavy
	// memory traffic) below 1000 W.
	m := m01(t)
	idle := m.IdlePower()
	if idle < 400 || idle > 500 {
		t.Errorf("m01 idle = %v, want within [400, 500] W", idle)
	}
	full := m.TruePower(Load{CPU: 32, MemGBs: 2, NetFrac: 1, MigActive: true})
	if full < 800 || full > 1000 {
		t.Errorf("m01 full load = %v, want within [800, 1000] W", full)
	}
	if full <= idle+300 {
		t.Errorf("dynamic range %v too small for the paper's 400-900 W plots", full-idle)
	}
}

func TestXeonIdleBelowOpteron(t *testing.T) {
	// The C1→C2 bias correction only exists because the o-pair idles lower.
	cat := Catalog()
	mi, oi := cat["m01"].IdlePower(), cat["o1"].IdlePower()
	if oi >= mi {
		t.Errorf("o1 idle %v must be below m01 idle %v", oi, mi)
	}
	if mi-oi < 100 {
		t.Errorf("idle gap %v too small to exercise the bias correction", mi-oi)
	}
}

func TestTruePowerCapsAtCapacity(t *testing.T) {
	m := m01(t)
	atCap := m.TruePower(Load{CPU: 32})
	beyond := m.TruePower(Load{CPU: 64})
	if math.Abs(float64(atCap-beyond)) > 1e-9 {
		t.Errorf("power beyond capacity (%v) must equal power at capacity (%v): multiplexing flattens the curve", beyond, atCap)
	}
}

func TestTruePowerComponentsAdd(t *testing.T) {
	m := m01(t)
	base := m.TruePower(Load{})
	withNet := m.TruePower(Load{NetFrac: 1})
	withMem := m.TruePower(Load{MemGBs: 2})
	withMig := m.TruePower(Load{MigActive: true})
	if withNet <= base || withMem <= base || withMig <= base {
		t.Error("each active component must add power")
	}
	// NIC at half rate is half the NIC delta (linear in utilisation).
	half := m.TruePower(Load{NetFrac: 0.5})
	wantHalf := float64(base) + (float64(withNet)-float64(base))/2
	if math.Abs(float64(half)-wantHalf) > 1e-9 {
		t.Errorf("NIC power not linear: half = %v, want %v", half, wantHalf)
	}
}

func TestTruePowerSuperlinearBend(t *testing.T) {
	// κ > 1 means the second half of the load adds more power than the
	// first half — the nonlinearity the linear models must approximate.
	m := m01(t)
	p0 := m.TruePower(Load{CPU: 0})
	p16 := m.TruePower(Load{CPU: 16})
	p32 := m.TruePower(Load{CPU: 32})
	firstHalf := float64(p16 - p0)
	secondHalf := float64(p32 - p16)
	if secondHalf <= firstHalf {
		t.Errorf("expected convex CPU power curve: first half %v, second half %v", firstHalf, secondHalf)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := m01(t)
	mutations := []func(*MachineSpec){
		func(m *MachineSpec) { m.Name = "" },
		func(m *MachineSpec) { m.Threads = 0 },
		func(m *MachineSpec) { m.RAM = 0 },
		func(m *MachineSpec) { m.LinkRate = 0 },
		func(m *MachineSpec) { m.MigrationRate = 0 },
		func(m *MachineSpec) { m.MigrationRate = 2 * units.Gbps },
		func(m *MachineSpec) { m.Power.Idle = 0 },
		func(m *MachineSpec) { m.Power.CPUExponent = 0.9 },
		func(m *MachineSpec) { m.Power.PSUEfficiency = 0 },
		func(m *MachineSpec) { m.Power.PSUEfficiency = 1.5 },
	}
	for i, mut := range mutations {
		m := good
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNegativeLoadClamped(t *testing.T) {
	m := m01(t)
	neg := m.TruePower(Load{CPU: -5, MemGBs: 0, NetFrac: -0.3})
	if math.Abs(float64(neg-m.IdlePower())) > 1e-9 {
		t.Errorf("negative loads should clamp to idle, got %v vs %v", neg, m.IdlePower())
	}
}
