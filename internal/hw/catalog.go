package hw

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// Machine pair identifiers used throughout the experiments.
const (
	PairM = "m01-m02" // AMD Opteron pair used for training and validation
	PairO = "o1-o2"   // Intel Xeon pair used for cross-hardware validation
)

// opteronProfile is the ground-truth power model calibrated so that the
// m01/m02 traces span the paper's 400–900 W band: idle ≈ 440 W AC, full
// CPU load ≈ 880 W AC (Figures 3–7 plot exactly this range).
func opteronProfile() PowerProfile {
	return PowerProfile{
		Idle:          405,
		CPUPerThread:  12.4,
		CPUExponent:   1.10,
		MemPerGBs:     26, // DDR2 random-write traffic is power-hungry
		NICActive:     16,
		MigOverhead:   24,
		PSUEfficiency: 0.92,
	}
}

// xeonProfile models the newer, lower-idle Xeon E5-2690 pair. Its idle
// power sits well below the Opterons', which is what forces the paper's
// C1 → C2 bias correction when transporting coefficients.
func xeonProfile() PowerProfile {
	return PowerProfile{
		Idle:          245,
		CPUPerThread:  9.8,
		CPUExponent:   1.13,
		MemPerGBs:     19,
		NICActive:     11,
		MigOverhead:   19,
		PSUEfficiency: 0.94,
	}
}

// denseProfile models h1, a modern dense-core node beyond the paper's
// testbed (see Catalog): much lower idle power and per-thread cost than
// either paper machine, with a sharper saturation bend. Its role is to
// make heterogeneous-pair scenarios interesting — migrating between
// machines whose power curves disagree is exactly where a per-pair bias
// correction starts to strain.
func denseProfile() PowerProfile {
	return PowerProfile{
		Idle:          175,
		CPUPerThread:  6.2,
		CPUExponent:   1.16,
		MemPerGBs:     14,
		NICActive:     9,
		MigOverhead:   15,
		PSUEfficiency: 0.96,
	}
}

// newMachine builds a validated MachineSpec or panics: the catalog is
// static data and a bad entry is a programming error.
func newMachine(name string, threads int, ram units.Bytes, nic, sw string, migRate units.BitsPerSecond, p PowerProfile) MachineSpec {
	m := MachineSpec{
		Name:          name,
		Threads:       threads,
		RAM:           ram,
		NIC:           nic,
		Switch:        sw,
		LinkRate:      units.Gbps,
		MigrationRate: migRate,
		XenVersion:    "4.2.5",
		Power:         p,
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// Catalog returns the testbed machines keyed by name: the four machines
// of the paper's Table IIc (m01/m02, o1/o2) plus h1, an extension machine
// beyond the paper used by heterogeneous-pair scenarios. The two paper
// pairs differ in CPU generation, RAM, NIC and switch; within a pair the
// machines are homogeneous, matching Xen's requirement that migration
// endpoints share an architecture. h1 shares m01/m02's switch so custom
// pairs like "m01/h1" have a physical path.
func Catalog() map[string]MachineSpec {
	// The Broadcom BCM5704 path sustains a higher share of line rate for
	// the Xen migration stream than the Intel 82574L behind the small HP
	// switch; this asymmetry gives the o-pair its longer transfers.
	mRate := 760 * units.Mbps
	oRate := 620 * units.Mbps
	hRate := 840 * units.Mbps
	return map[string]MachineSpec{
		"m01": newMachine("m01", 32, 32*units.GiB, "Broadcom BCM5704", "Cisco Catalyst 3750", mRate, opteronProfile()),
		"m02": newMachine("m02", 32, 32*units.GiB, "Broadcom BCM5704", "Cisco Catalyst 3750", mRate, opteronProfile()),
		"o1":  newMachine("o1", 40, 128*units.GiB, "Intel 82574L", "HP 1810-8G", oRate, xeonProfile()),
		"o2":  newMachine("o2", 40, 128*units.GiB, "Intel 82574L", "HP 1810-8G", oRate, xeonProfile()),
		"h1":  newMachine("h1", 48, 64*units.GiB, "Intel X540-T2", "Cisco Catalyst 3750", hRate, denseProfile()),
	}
}

// Pair returns the (source, target) machines of a named pair. Beyond the
// paper's two named pairs, "src/dst" selects a custom — possibly
// heterogeneous — pair of catalog machines, e.g. "m01/h1". A catalog
// entry names a machine *model*, so "h1/h1" is valid: two physical
// instances of the same model, the common case inside an N-host cluster
// built from one rack SKU. Whether a custom pair can actually migrate
// (shared switch) is checked where the link is built, in netsim.NewLink.
func Pair(name string) (src, dst MachineSpec, err error) {
	cat := Catalog()
	switch name {
	case PairM:
		return cat["m01"], cat["m02"], nil
	case PairO:
		return cat["o1"], cat["o2"], nil
	}
	if s, d, ok := strings.Cut(name, "/"); ok {
		src, okS := cat[s]
		dst, okD := cat[d]
		switch {
		case !okS:
			return MachineSpec{}, MachineSpec{}, fmt.Errorf("hw: unknown machine %q in pair %q", s, name)
		case !okD:
			return MachineSpec{}, MachineSpec{}, fmt.Errorf("hw: unknown machine %q in pair %q", d, name)
		}
		return src, dst, nil
	}
	return MachineSpec{}, MachineSpec{}, fmt.Errorf("hw: unknown machine pair %q (want %q, %q or \"src/dst\" from the catalog)", name, PairM, PairO)
}

// PairNames lists the machine pairs in evaluation order.
func PairNames() []string { return []string{PairM, PairO} }
