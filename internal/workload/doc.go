// Package workload implements the benchmark loads of the paper's
// experimental design (Section V-A): the matrixmult CPU-intensive kernel —
// here a real, goroutine-parallel matrix multiplication, the Go analogue
// of the paper's OpenMP C implementation — and the pagedirtier
// memory-intensive load, plus the load-level staircases that drive the
// CPULOAD and MEMLOAD experiment families.
//
// Two layers live here. The executable kernels (MatrixMult) validate the
// workload behaviour for real; the declarative Profiles (MatrixMultProfile,
// PagedirtierProfile, HotColdMemProfile, NetIntensiveProfile, IdleProfile)
// describe the same workloads to the simulator — CPU demand per vCPU,
// page-write rate, working-set shape — and instantiate dirtiers
// (internal/mem) from a seed.
//
// Beyond the paper's constant-intensity runs, Phase models time-varying
// intensity (steady, burst, diurnal, ramp): Phase.Factor evaluates the
// shape at a position in the phase and Profile.Modulate scales a profile
// by that factor. The declarative scenario subsystem (internal/scenario)
// compiles phase timelines into independently runnable migration blocks —
// "the same service, migrated at night vs at the midday peak". See
// ARCHITECTURE.md for where this sits in the data flow.
package workload
