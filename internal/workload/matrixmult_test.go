package workload

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestMatrixMultMatchesSerialReference checks the parallel product against
// the plain triple-loop for several shapes and worker counts — the exact
// element values, not just the checksum.
func TestMatrixMultMatchesSerialReference(t *testing.T) {
	for _, n := range []int{1, 7, 32, 65} {
		for _, workers := range []int{1, 2, 3, 16} {
			m, err := NewMatrixMult(n, workers)
			if err != nil {
				t.Fatal(err)
			}
			m.Run()
			ref := m.SerialReference()
			for i := range ref {
				if math.Abs(m.c[i]-ref[i]) > 1e-9 {
					t.Fatalf("n=%d workers=%d: c[%d] = %v, want %v", n, workers, i, m.c[i], ref[i])
				}
			}
		}
	}
}

func TestMatrixMultRunIsRepeatable(t *testing.T) {
	m, err := NewMatrixMult(33, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	first := m.Checksum()
	for i := 0; i < 3; i++ {
		m.Run() // must recompute from scratch, not accumulate
		if got := m.Checksum(); got != first {
			t.Fatalf("run %d checksum %v != first %v", i+2, got, first)
		}
	}
}

func TestMatrixMultMoreWorkersThanRows(t *testing.T) {
	// 2 rows across 8 workers: the row-block split must not panic or drop
	// rows when most workers get nothing.
	m, err := NewMatrixMult(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	ref := m.SerialReference()
	for i := range ref {
		if m.c[i] != ref[i] {
			t.Fatalf("c[%d] = %v, want %v", i, m.c[i], ref[i])
		}
	}
}

func TestMatrixMultAccessors(t *testing.T) {
	m, err := NewMatrixMult(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 16 || m.Workers() != 3 {
		t.Errorf("N/Workers = %d/%d", m.N(), m.Workers())
	}
	if got, want := m.FlopCount(), int64(2*16*16*16); got != want {
		t.Errorf("FlopCount = %d, want %d", got, want)
	}
	s := m.String()
	if !strings.Contains(s, "n=16") || !strings.Contains(s, "workers=3") {
		t.Errorf("String = %q", s)
	}
	if s != fmt.Sprintf("matrixmult(n=%d, workers=%d)", 16, 3) {
		t.Errorf("String format drifted: %q", s)
	}
}

func TestMatrixMultChecksumDetectsTransposition(t *testing.T) {
	// The alternating-sign checksum must notice a row/column swap: compare
	// against the checksum of the transposed product.
	m, err := NewMatrixMult(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	orig := m.Checksum()
	n := m.n
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.c[i*n+j], m.c[j*n+i] = m.c[j*n+i], m.c[i*n+j]
		}
	}
	if m.Checksum() == orig {
		t.Error("checksum unchanged by transposition; too weak to catch index bugs")
	}
}
