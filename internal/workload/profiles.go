package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/units"
)

// Profile is the simulation-facing description of a workload: how much CPU
// it demands per vCPU and how it dirties memory. The real kernels above
// validate the behaviour; the profiles drive the simulated sweeps.
type Profile struct {
	// Name identifies the workload (matrixmult, pagedirtier, idle).
	Name string
	// CPUPerVCPU is the demand per virtual CPU in [0,1]: matrixmult pins
	// every vCPU at 1.0, pagedirtier keeps its single vCPU busy, idle is 0.
	CPUPerVCPU units.Fraction
	// DirtyPagesPerSecond is the page-write event rate of the workload at
	// full CPU share.
	DirtyPagesPerSecond float64
	// WorkingSet is the fraction of VM memory the workload touches.
	WorkingSet units.Fraction
	// HotFrac and HotProb select the hot/cold dirtier instead of the
	// uniform one when HotProb > 0: a HotFrac-sized hot set receives
	// HotProb of the writes. Models skewed real-world working sets
	// (databases, JVM heaps) — an extension beyond the paper's uniform
	// pagedirtier.
	HotFrac units.Fraction
	HotProb float64
}

// Canonical profiles of the paper's benchmarks.

// MatrixMultProfile is the CPU-intensive load: all vCPUs busy, negligible
// page dirtying (the operand matrices fit in a fixed working set that is
// written once).
func MatrixMultProfile() Profile {
	return Profile{
		Name:                "matrixmult",
		CPUPerVCPU:          1.0,
		DirtyPagesPerSecond: 600, // code+stack+result pages churn slowly
		WorkingSet:          0.05,
	}
}

// PagedirtierProfile is the memory-intensive load, parameterised by the
// target dirty ratio of the MEMLOAD experiments ("workloads using at least
// 90% of the memory allocated" / "high memory dirty ratio"). The write
// rate is chosen so the working set re-dirties within a few seconds,
// faster than a gigabit link can drain a 4 GB image — the regime where
// live migration struggles.
func PagedirtierProfile(targetDirty units.Fraction) Profile {
	ws := targetDirty.Clamp()
	// pagedirtier touches its whole allocation continuously; the write
	// rate scales with the working-set size so the time to re-dirty the
	// set stays roughly constant across the 5%..95% sweep.
	pages := float64(units.PagesOf(4*units.GiB)) * float64(ws)
	rate := pages / 4.0 // re-dirty the working set every ~4 s
	return Profile{
		Name:                "pagedirtier",
		CPUPerVCPU:          1.0,
		DirtyPagesPerSecond: rate,
		WorkingSet:          ws,
	}
}

// IdleProfile is a guest doing nothing.
func IdleProfile() Profile {
	return Profile{Name: "idle"}
}

// NetIntensiveProfile models the paper's future-work workload family:
// saturating network I/O with modest CPU and negligible dirtying. The
// paper reports "negligible energy impacts caused by network-intensive
// workloads during migration"; the extension experiments verify that our
// substrate reproduces that.
func NetIntensiveProfile() Profile {
	return Profile{
		Name:                "netintensive",
		CPUPerVCPU:          0.25,
		DirtyPagesPerSecond: 400,
		WorkingSet:          0.02,
	}
}

// Dirtier instantiates the memory behaviour of the profile with a seed.
func (p Profile) Dirtier(seed int64) mem.Dirtier {
	if p.DirtyPagesPerSecond <= 0 || p.WorkingSet <= 0 {
		return mem.NoDirtier{}
	}
	if p.HotProb > 0 {
		return mem.NewHotColdDirtier(p.DirtyPagesPerSecond, p.HotFrac, p.HotProb, seed)
	}
	return mem.NewUniformDirtier(p.DirtyPagesPerSecond, p.WorkingSet, seed)
}

// HotColdMemProfile is the skewed-memory extension workload: the same
// write rate as PagedirtierProfile at the given target, but with 90%% of
// writes concentrated on a hot tenth of the image. Pre-copy handles this
// far better than a uniform dirtier of equal rate because re-writes mostly
// hit already-dirty pages.
func HotColdMemProfile(targetDirty units.Fraction) Profile {
	p := PagedirtierProfile(targetDirty)
	p.Name = "hotcold"
	p.HotFrac = 0.1
	p.HotProb = 0.9
	return p
}

// Validate rejects unphysical profiles.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if p.CPUPerVCPU < 0 || p.CPUPerVCPU > 1 {
		return fmt.Errorf("workload: %s CPU per vCPU %v outside [0,1]", p.Name, p.CPUPerVCPU)
	}
	if p.DirtyPagesPerSecond < 0 {
		return fmt.Errorf("workload: %s negative dirty rate", p.Name)
	}
	if p.WorkingSet < 0 || p.WorkingSet > 1 {
		return fmt.Errorf("workload: %s working set %v outside [0,1]", p.Name, p.WorkingSet)
	}
	if p.HotProb < 0 || p.HotProb > 1 {
		return fmt.Errorf("workload: %s hot probability %v outside [0,1]", p.Name, p.HotProb)
	}
	if p.HotFrac < 0 || p.HotFrac > 1 {
		return fmt.Errorf("workload: %s hot fraction %v outside [0,1]", p.Name, p.HotFrac)
	}
	return nil
}

// LoadLevels returns the paper's CPULOAD staircase: the number of load-cpu
// VMs co-located on a host for each experiment step. Each load-cpu VM has
// 4 vCPUs on a 32-thread machine, so the levels sweep host utilisation
// 0% → 100% in 25%-ish increments, with the final 8-VM step demanding
// 32+4 = 36 vCPUs when a migrating VM is present — the deliberate
// multiplexing case ("VMs require more CPUs than the host can offer").
func LoadLevels() []int { return []int{0, 1, 3, 5, 7, 8} }

// DirtyLevels returns the MEMLOAD-VM dirty-ratio sweep of Figure 5.
func DirtyLevels() []units.Fraction {
	return []units.Fraction{0.05, 0.15, 0.35, 0.55, 0.75, 0.95}
}
