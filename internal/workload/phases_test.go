package workload

import (
	"math"
	"testing"
	"time"
)

func TestPhaseValidate(t *testing.T) {
	good := Phase{Kind: PhaseSteady, Duration: time.Hour}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
	cases := []Phase{
		{Kind: "spiky", Duration: time.Hour},      // unknown kind
		{Kind: PhaseBurst, Duration: 0},           // zero-length
		{Kind: PhaseRamp, Duration: -time.Second}, // negative length
		{Kind: PhaseSteady, Duration: time.Hour, Level: -1},
		{Kind: PhaseSteady, Duration: time.Hour, Peak: -0.5},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("phase %+v validated but should not", c)
		}
	}
}

func TestPhaseFactorShapes(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }

	steady := Phase{Kind: PhaseSteady, Duration: time.Hour, Level: 0.7}
	for _, f := range []float64{0, 0.3, 1} {
		if got := steady.Factor(f); !approx(got, 0.7) {
			t.Errorf("steady factor at %v = %v, want 0.7", f, got)
		}
	}

	burst := Phase{Kind: PhaseBurst, Duration: time.Hour, Level: 1, Peak: 3}
	if got := burst.Factor(0.5); !approx(got, 3) {
		t.Errorf("burst peak = %v, want 3", got)
	}
	if got := burst.Factor(0); !approx(got, 1) {
		t.Errorf("burst start = %v, want 1", got)
	}
	if got := burst.Factor(0.25); !approx(got, 2) {
		t.Errorf("burst quarter = %v, want 2", got)
	}

	ramp := Phase{Kind: PhaseRamp, Duration: time.Hour, Level: 0.5, Peak: 1.5}
	if got := ramp.Factor(0.5); !approx(got, 1.0) {
		t.Errorf("ramp midpoint = %v, want 1.0", got)
	}

	diurnal := Phase{Kind: PhaseDiurnal, Duration: 24 * time.Hour, Level: 0.2, Peak: 1.0}
	if got := diurnal.Factor(0); !approx(got, 0.2) {
		t.Errorf("diurnal midnight = %v, want 0.2", got)
	}
	if got := diurnal.Factor(0.5); !approx(got, 1.0) {
		t.Errorf("diurnal midday = %v, want 1.0", got)
	}
	// Clamping.
	if got := diurnal.Factor(2); !approx(got, diurnal.Factor(1)) {
		t.Errorf("factor not clamped above 1: %v", got)
	}
}

func TestPhaseFactorDefaults(t *testing.T) {
	// Zero Level means 1 (unmodified); zero Peak means Level.
	p := Phase{Kind: PhaseBurst, Duration: time.Hour}
	if got := p.Factor(0.5); got != 1 {
		t.Errorf("default burst factor = %v, want 1", got)
	}
	p = Phase{Kind: PhaseRamp, Duration: time.Hour, Level: 0.4}
	if got := p.Factor(1); got != 0.4 {
		t.Errorf("ramp with defaulted peak = %v, want 0.4", got)
	}
}

func TestProfileModulate(t *testing.T) {
	base := PagedirtierProfile(0.55)
	half := base.Modulate(0.5)
	if half.DirtyPagesPerSecond != base.DirtyPagesPerSecond*0.5 {
		t.Errorf("dirty rate not halved: %v vs %v", half.DirtyPagesPerSecond, base.DirtyPagesPerSecond)
	}
	if float64(half.CPUPerVCPU) != 0.5 {
		t.Errorf("CPU demand = %v, want 0.5", half.CPUPerVCPU)
	}
	if half.WorkingSet != base.WorkingSet {
		t.Errorf("working set changed under modulation")
	}

	// Intensifying saturates CPU at one vCPU but scales the dirty rate.
	twice := base.Modulate(2)
	if float64(twice.CPUPerVCPU) != 1 {
		t.Errorf("CPU demand above 1 vCPU: %v", twice.CPUPerVCPU)
	}
	if twice.DirtyPagesPerSecond != base.DirtyPagesPerSecond*2 {
		t.Errorf("dirty rate not doubled")
	}

	// Identity and floor.
	if got := base.Modulate(1); got != base {
		t.Errorf("factor 1 changed the profile")
	}
	if got := base.Modulate(-3); got.DirtyPagesPerSecond != 0 || got.CPUPerVCPU != 0 {
		t.Errorf("negative factor not floored to idle: %+v", got)
	}

	// Modulated profiles stay valid.
	for _, f := range []float64{0, 0.3, 1, 2.5} {
		if err := base.Modulate(f).Validate(); err != nil {
			t.Errorf("modulated profile (factor %v) invalid: %v", f, err)
		}
	}
}
