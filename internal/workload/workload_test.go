package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestMatrixMultCorrectAcrossParallelism(t *testing.T) {
	// Every worker count must produce the serial product.
	ref, err := NewMatrixMult(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.SerialReference()
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 64, 100} {
		m, err := NewMatrixMult(64, workers)
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		for i := range want {
			if math.Abs(m.c[i]-want[i]) > 1e-9 {
				t.Fatalf("workers=%d: element %d = %v, want %v", workers, i, m.c[i], want[i])
			}
		}
	}
}

func TestMatrixMultChecksumStable(t *testing.T) {
	m, err := NewMatrixMult(48, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	first := m.Checksum()
	m.Run() // rerun must not accumulate
	if got := m.Checksum(); got != first {
		t.Errorf("checksum drifted across runs: %v then %v", first, got)
	}
	if first == 0 {
		t.Error("checksum should be non-trivial")
	}
}

func TestMatrixMultValidation(t *testing.T) {
	if _, err := NewMatrixMult(0, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewMatrixMult(-4, 1); err == nil {
		t.Error("negative n must fail")
	}
	if _, err := NewMatrixMult(4, -1); err == nil {
		t.Error("negative workers must fail")
	}
	m, err := NewMatrixMult(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers() <= 0 {
		t.Error("workers=0 must default to GOMAXPROCS")
	}
}

func TestMatrixMultMeta(t *testing.T) {
	m, _ := NewMatrixMult(10, 2)
	if m.N() != 10 {
		t.Errorf("N = %d", m.N())
	}
	if m.FlopCount() != 2000 {
		t.Errorf("FlopCount = %d, want 2000", m.FlopCount())
	}
	if !strings.Contains(m.String(), "matrixmult") {
		t.Errorf("String = %q", m.String())
	}
}

func TestCanonicalProfiles(t *testing.T) {
	for _, p := range []Profile{
		MatrixMultProfile(),
		PagedirtierProfile(0.95),
		IdleProfile(),
		NetIntensiveProfile(),
	} {
		if p.Name == "" {
			t.Error("profile missing name")
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	if MatrixMultProfile().CPUPerVCPU != 1 {
		t.Error("matrixmult must pin vCPUs at 100%")
	}
	if IdleProfile().CPUPerVCPU != 0 {
		t.Error("idle must demand nothing")
	}
}

func TestPagedirtierScalesWithTarget(t *testing.T) {
	lo := PagedirtierProfile(0.05)
	hi := PagedirtierProfile(0.95)
	if hi.DirtyPagesPerSecond <= lo.DirtyPagesPerSecond {
		t.Errorf("95%% target rate %v must exceed 5%% rate %v",
			hi.DirtyPagesPerSecond, lo.DirtyPagesPerSecond)
	}
	if hi.WorkingSet != 0.95 || lo.WorkingSet != 0.05 {
		t.Errorf("working sets = %v, %v", hi.WorkingSet, lo.WorkingSet)
	}
	// Out-of-range targets clamp.
	over := PagedirtierProfile(1.5)
	if over.WorkingSet != 1 {
		t.Errorf("working set = %v, want clamped to 1", over.WorkingSet)
	}
}

func TestProfileDirtier(t *testing.T) {
	if d := IdleProfile().Dirtier(1); d.Rate() != 0 {
		t.Error("idle profile must yield a no-op dirtier")
	}
	d := PagedirtierProfile(0.95).Dirtier(1)
	if d.Rate() <= 0 {
		t.Error("pagedirtier must dirty pages")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", CPUPerVCPU: -0.1},
		{Name: "x", CPUPerVCPU: 1.1},
		{Name: "x", DirtyPagesPerSecond: -1},
		{Name: "x", WorkingSet: 2},
		{Name: "x", WorkingSet: -0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestLoadLevels(t *testing.T) {
	got := LoadLevels()
	want := []int{0, 1, 3, 5, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("LoadLevels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("LoadLevels[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The last level must oversubscribe a 32-thread host once the 4-vCPU
	// migrating VM is added: 8×4 + 4 = 36 > 32.
	if got[len(got)-1]*4+4 <= 32 {
		t.Error("final load level must force CPU multiplexing")
	}
}

func TestDirtyLevels(t *testing.T) {
	got := DirtyLevels()
	want := []units.Fraction{0.05, 0.15, 0.35, 0.55, 0.75, 0.95}
	if len(got) != len(want) {
		t.Fatalf("DirtyLevels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DirtyLevels[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func BenchmarkMatrixMultSerial(b *testing.B) {
	m, _ := NewMatrixMult(128, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run()
	}
}

func BenchmarkMatrixMultParallel(b *testing.B) {
	m, _ := NewMatrixMult(128, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run()
	}
}

func TestHotColdMemProfile(t *testing.T) {
	p := HotColdMemProfile(0.75)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.HotProb != 0.9 || p.HotFrac != 0.1 {
		t.Errorf("skew parameters = %v/%v", p.HotFrac, p.HotProb)
	}
	// Same rate as the uniform profile at the same target.
	if p.DirtyPagesPerSecond != PagedirtierProfile(0.75).DirtyPagesPerSecond {
		t.Error("hot/cold must match pagedirtier's write rate")
	}
	// Dirtier dispatch: HotProb > 0 selects the skewed dirtier.
	d := p.Dirtier(1)
	if d.Rate() != p.DirtyPagesPerSecond {
		t.Errorf("dirtier rate = %v", d.Rate())
	}
	bad := p
	bad.HotProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range hot probability must fail")
	}
	bad = p
	bad.HotFrac = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative hot fraction must fail")
	}
}
