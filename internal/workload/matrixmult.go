package workload

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// MatrixMult is the CPU-intensive benchmark: C = A·B on dense float64
// matrices, parallelised by row blocks across a configurable number of
// workers, like the paper's OpenMP matrix multiplication that "can be
// easily parallelised allowing us to load all virtual CPUs".
type MatrixMult struct {
	n       int
	workers int
	a, b, c []float64
}

// NewMatrixMult allocates an n×n problem executed by the given number of
// workers (0 means GOMAXPROCS).
func NewMatrixMult(n, workers int) (*MatrixMult, error) {
	if n <= 0 {
		return nil, errors.New("workload: matrix dimension must be positive")
	}
	if workers < 0 {
		return nil, errors.New("workload: negative worker count")
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &MatrixMult{
		n:       n,
		workers: workers,
		a:       make([]float64, n*n),
		b:       make([]float64, n*n),
		c:       make([]float64, n*n),
	}
	// Deterministic, non-trivial operands: a[i][j] depends on both indices
	// so row/column mix-ups show up in the checksum.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.a[i*n+j] = float64((i+1)*(j+2)%17) / 3
			m.b[i*n+j] = float64((i+3)*(j+1)%13) / 5
		}
	}
	return m, nil
}

// N returns the matrix dimension.
func (m *MatrixMult) N() int { return m.n }

// Workers returns the parallelism degree.
func (m *MatrixMult) Workers() int { return m.workers }

// Run multiplies the matrices, splitting rows across workers. It is safe to
// call repeatedly; each call recomputes C from scratch.
func (m *MatrixMult) Run() {
	n := m.n
	for i := range m.c {
		m.c[i] = 0
	}
	var wg sync.WaitGroup
	rowsPer := (n + m.workers - 1) / m.workers
	for w := 0; w < m.workers; w++ {
		lo := w * rowsPer
		if lo >= n {
			break
		}
		hi := lo + rowsPer
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// ikj loop order: stream through B rows for cache friendliness.
			for i := lo; i < hi; i++ {
				arow := m.a[i*n : (i+1)*n]
				crow := m.c[i*n : (i+1)*n]
				for k := 0; k < n; k++ {
					aik := arow[k]
					if aik == 0 {
						continue
					}
					brow := m.b[k*n : (k+1)*n]
					for j := range brow {
						crow[j] += aik * brow[j]
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Checksum returns a deterministic digest of C used by tests to confirm
// that every parallelisation degree computes the same product.
func (m *MatrixMult) Checksum() float64 {
	s := 0.0
	for i, v := range m.c {
		// Alternate signs so element swaps don't cancel out.
		if i%2 == 0 {
			s += v
		} else {
			s -= v
		}
	}
	return s
}

// SerialReference computes C serially into a fresh slice, for verification.
func (m *MatrixMult) SerialReference() []float64 {
	n := m.n
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := m.a[i*n+k]
			for j := 0; j < n; j++ {
				out[i*n+j] += aik * m.b[k*n+j]
			}
		}
	}
	return out
}

// FlopCount returns the floating-point operations of one Run (2n³).
func (m *MatrixMult) FlopCount() int64 {
	n := int64(m.n)
	return 2 * n * n * n
}

// String describes the workload.
func (m *MatrixMult) String() string {
	return fmt.Sprintf("matrixmult(n=%d, workers=%d)", m.n, m.workers)
}
