package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// PhaseKind names the shape of one segment of a workload timeline. The
// paper's campaigns hold workload intensity constant within a run; the
// phase kinds extend that to the time-varying intensities real services
// exhibit, so a scenario can ask "what does this migration cost if it
// happens during the burst / on the ramp / at this hour of the day?".
type PhaseKind string

// The supported phase shapes.
const (
	// PhaseSteady holds the intensity at Level for the whole phase.
	PhaseSteady PhaseKind = "steady"
	// PhaseBurst rises linearly from Level to Peak at the phase midpoint
	// and falls back — a triangular load spike.
	PhaseBurst PhaseKind = "burst"
	// PhaseDiurnal samples a day-shaped sinusoid: Level at position 0
	// (midnight), Peak at position 0.5 (midday), Level again at 1.
	PhaseDiurnal PhaseKind = "diurnal"
	// PhaseRamp rises linearly from Level to Peak across the phase.
	PhaseRamp PhaseKind = "ramp"
)

// PhaseKinds lists the supported kinds in a stable order (for error
// messages and documentation).
func PhaseKinds() []PhaseKind {
	return []PhaseKind{PhaseSteady, PhaseBurst, PhaseDiurnal, PhaseRamp}
}

// Phase is one segment of a workload timeline: a shape, a duration, and
// the intensity factors the shape interpolates between. A factor of 1
// reproduces the underlying profile unchanged; factors below 1 throttle
// it towards idle; values above 1 intensify it (CPU demand saturates at
// one full vCPU, dirty rates scale without bound). Note the zero values
// of Level and Peak select defaults (1 and Level respectively) — an
// exactly-zero intensity is expressed with a vanishingly small factor,
// or by pointing the scenario at the idle workload profile instead.
type Phase struct {
	// Name labels the phase in run labels ("night", "lunch-spike"); the
	// kind plus index is used when empty.
	Name string
	// Kind selects the shape.
	Kind PhaseKind
	// Duration is the phase length. It must be positive.
	Duration time.Duration
	// Level is the baseline intensity factor (0 selects 1, the unmodified
	// profile).
	Level float64
	// Peak is the maximum intensity factor of burst/diurnal/ramp shapes
	// (0 selects Level, degenerating the shape to steady).
	Peak float64
}

// withDefaults fills unset factors.
func (p Phase) withDefaults() Phase {
	if p.Level == 0 {
		p.Level = 1
	}
	if p.Peak == 0 {
		p.Peak = p.Level
	}
	return p
}

// Validate rejects unusable phases.
func (p Phase) Validate() error {
	switch p.Kind {
	case PhaseSteady, PhaseBurst, PhaseDiurnal, PhaseRamp:
	default:
		return fmt.Errorf("workload: unknown phase kind %q (want one of %v)", p.Kind, PhaseKinds())
	}
	if p.Duration <= 0 {
		return fmt.Errorf("workload: phase %q has non-positive duration %v", p.label(), p.Duration)
	}
	if p.Level < 0 || p.Peak < 0 {
		return fmt.Errorf("workload: phase %q has negative intensity factor", p.label())
	}
	return nil
}

func (p Phase) label() string {
	if p.Name != "" {
		return p.Name
	}
	return string(p.Kind)
}

// Factor evaluates the phase's intensity at a fractional position in
// [0, 1] within the phase. Positions outside the range are clamped.
func (p Phase) Factor(frac float64) float64 {
	p = p.withDefaults()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch p.Kind {
	case PhaseBurst:
		return p.Level + (p.Peak-p.Level)*(1-math.Abs(2*frac-1))
	case PhaseDiurnal:
		return p.Level + (p.Peak-p.Level)*0.5*(1-math.Cos(2*math.Pi*frac))
	case PhaseRamp:
		return p.Level + (p.Peak-p.Level)*frac
	default: // PhaseSteady
		return p.Level
	}
}

// Modulate scales the profile's intensity by a non-negative factor: CPU
// demand per vCPU scales and saturates at a full vCPU, the page-write
// rate scales linearly. The working set and hot/cold skew are properties
// of what the workload touches, not how hard it runs, so they are
// unchanged. Factor 1 returns the profile unmodified.
func (p Profile) Modulate(factor float64) Profile {
	if factor < 0 {
		factor = 0
	}
	if factor == 1 {
		return p
	}
	out := p
	out.CPUPerVCPU = units.Fraction(float64(p.CPUPerVCPU) * factor).Clamp()
	out.DirtyPagesPerSecond = p.DirtyPagesPerSecond * factor
	return out
}
