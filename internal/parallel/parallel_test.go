package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		budget, outer        int
		wantOuter, wantInner int
	}{
		{8, 12, 8, 1}, // more items than budget: all budget outer
		{8, 3, 3, 2},  // few items: spare budget goes inner (3*2 <= 8)
		{8, 1, 1, 8},  // single item: everything inner
		{1, 10, 1, 1}, // sequential budget stays sequential
		{4, 4, 4, 1},
	}
	for _, c := range cases {
		o, i := Split(c.budget, c.outer)
		if o != c.wantOuter || i != c.wantInner {
			t.Errorf("Split(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.outer, o, i, c.wantOuter, c.wantInner)
		}
		if o*i > Workers(c.budget) {
			t.Errorf("Split(%d, %d) product %d exceeds budget", c.budget, c.outer, o*i)
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	out, err := Map(4, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inflight, peak atomic.Int64
	_, err := Map(workers, 50, func(i int) (struct{}, error) {
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inflight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds pool width %d", p, workers)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	// Fail at several indices; the reported error must be the lowest one,
	// as a sequential loop would have hit it first.
	for trial := 0; trial < 10; trial++ {
		_, err := Map(8, 40, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("trial %d: err = %v, want item 3's error", trial, err)
		}
	}
}

func TestPoolWaitWithoutTasks(t *testing.T) {
	p := NewPool(2)
	if err := p.Wait(); err != nil {
		t.Fatalf("empty pool Wait = %v", err)
	}
	if p.Failed() {
		t.Error("empty pool reports Failed")
	}
}

// sequentialUntil is the reference semantics Until must replicate.
func sequentialUntil[T any](max int, fn func(i int) (T, error), stop func([]T) bool) ([]T, error) {
	var out []T
	for i := 0; i < max; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if stop(out) {
			return out, nil
		}
	}
	return out, nil
}

func TestUntilMatchesSequential(t *testing.T) {
	fn := func(i int) (int, error) { return i * 3, nil }
	for _, stopAt := range []int{1, 2, 5, 7, 19, 20, 100} {
		stop := func(prefix []int) bool { return len(prefix) >= stopAt }
		want, _ := sequentialUntil(20, fn, stop)
		for _, workers := range []int{1, 2, 8} {
			for _, hint := range []int{0, 1, 3, 25} {
				got, err := Until(workers, 20, hint, fn, stop)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("stopAt=%d workers=%d hint=%d: len %d, want %d", stopAt, workers, hint, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("stopAt=%d workers=%d hint=%d: out[%d] = %d, want %d", stopAt, workers, hint, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestUntilHintBoundsSpeculativeWaste pins the efficiency contract: with a
// repeat-floor hint, a wide pool must not compute far past the stop index.
// Stop fires at 2 with hint 2 on a 64-wide pool: the first batch computes
// exactly 2 items, so nothing is wasted; without the hint the same pool
// may compute up to the full width.
func TestUntilHintBoundsSpeculativeWaste(t *testing.T) {
	var calls atomic.Int64
	fn := func(i int) (int, error) { calls.Add(1); return i, nil }
	stop := func(prefix []int) bool { return len(prefix) >= 2 }
	out, err := Until(64, 50, 2, fn, stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("computed %d items for a stop at 2 with hint 2; hint failed to bound speculation", n)
	}

	// Geometric ramp-up: convergence at 6 should cost far less than the
	// pool width. Batches go 2, 2, 4 → at most 8 computed items.
	calls.Store(0)
	stop6 := func(prefix []int) bool { return len(prefix) >= 6 }
	if _, err := Until(64, 50, 2, fn, stop6); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n > 8 {
		t.Errorf("computed %d items for a stop at 6; ramp-up failed to bound speculation", n)
	}
}

func TestUntilStopBeatsLaterError(t *testing.T) {
	// fn fails at index 5, but stop fires at index 2: a sequential loop
	// never reaches index 5, so Until must succeed even when the failing
	// index was computed speculatively in the same batch.
	fn := func(i int) (int, error) {
		if i >= 5 {
			return 0, errors.New("speculative failure")
		}
		return i, nil
	}
	stop := func(prefix []int) bool { return len(prefix) == 3 }
	out, err := Until(8, 50, 2, fn, stop)
	if err != nil {
		t.Fatalf("Until = %v, want success (stop precedes the failure)", err)
	}
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
}

func TestUntilErrorBeforeStop(t *testing.T) {
	fn := func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("early failure")
		}
		return i, nil
	}
	stop := func(prefix []int) bool { return len(prefix) == 4 }
	if _, err := Until(8, 50, 0, fn, stop); err == nil || err.Error() != "early failure" {
		t.Fatalf("err = %v, want the index-1 failure", err)
	}
}

func TestUntilHitsCap(t *testing.T) {
	never := func(prefix []int) bool { return false }
	out, err := Until(4, 13, 0, func(i int) (int, error) { return i, nil }, never)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 13 {
		t.Fatalf("len = %d, want the cap 13", len(out))
	}
}

func TestUntilStopSeesDensePrefixes(t *testing.T) {
	var mu sync.Mutex
	var lens []int
	stop := func(prefix []int) bool {
		mu.Lock()
		lens = append(lens, len(prefix))
		mu.Unlock()
		for i, v := range prefix {
			if v != i {
				t.Errorf("prefix[%d] = %d: not dense/ordered", i, v)
			}
		}
		return len(prefix) >= 9
	}
	if _, err := Until(4, 50, 3, func(i int) (int, error) { return i, nil }, stop); err != nil {
		t.Fatal(err)
	}
	for i, l := range lens {
		if l != i+1 {
			t.Fatalf("stop call %d saw prefix length %d; lengths must increase by one", i, l)
		}
	}
}
