// Package parallel is the concurrent experiment engine: a bounded worker
// pool plus ordered-results collection that the experiments, sim and dcsim
// layers use to fan independent work items — experimental points, repeated
// runs, migration moves — out across CPUs without changing results.
//
// Determinism contract: every helper in this package dispatches work items
// in index order, collects results by index, and reports the error of the
// lowest-indexed failed item. Because each item derives its own RNG seed
// from its index (never from shared mutable state), running with one
// worker and running with many produce bit-identical outputs; only
// wall-clock time changes. Until additionally replicates the semantics of
// a sequential stop-when-converged loop by running speculative batches and
// truncating at the first index where the stop rule fires.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalises a configured worker count: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Split divides a worker budget between an outer fan-out of width outer
// and its nested inner fan-outs, returning the worker count for each
// level. The product never exceeds the budget, both levels get at least
// one worker, and the outer level is saturated first (outer items are the
// coarser, better-balanced unit of work).
func Split(budget, outer int) (outerWorkers, innerWorkers int) {
	budget = Workers(budget)
	outerWorkers = budget
	if outer > 0 && outer < outerWorkers {
		outerWorkers = outer
	}
	innerWorkers = budget / outerWorkers
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	return outerWorkers, innerWorkers
}

// Pool is a bounded worker pool. At most its configured width of tasks
// run concurrently; Go blocks while the pool is full, and Wait returns
// the error of the lowest-indexed failed task — the error a sequential
// loop over the same tasks would have surfaced first.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu     sync.Mutex
	err    error
	errIdx int
}

// NewPool builds a pool of the given width (<= 0 means runtime.NumCPU()).
func NewPool(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers)), errIdx: -1}
}

// Go schedules one indexed task, blocking until a worker slot frees up.
// The index establishes error precedence: on multiple failures, Wait
// reports the lowest index's error regardless of completion order.
func (p *Pool) Go(idx int, fn func() error) {
	p.sem <- struct{}{}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		if err := fn(); err != nil {
			p.mu.Lock()
			if p.err == nil || idx < p.errIdx {
				p.err, p.errIdx = err, idx
			}
			p.mu.Unlock()
		}
	}()
}

// Failed reports whether some already-finished task returned an error;
// callers feeding an open-ended task stream use it to stop submitting
// speculative work early.
func (p *Pool) Failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil
}

// Wait blocks until every submitted task has finished and returns the
// lowest-indexed error, if any.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Map runs fn(0), …, fn(n-1) on at most workers concurrent goroutines and
// returns the results in index order. On failure it returns nil and the
// lowest-indexed error, mirroring what a sequential loop would have hit
// first; items not yet dispatched when an earlier item fails are skipped.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with a cancellation boundary at every dispatch: once ctx
// is done, no further item starts, already-running items are waited for
// (they observe ctx themselves through their closure), and ctx's error is
// returned unless an already-dispatched item failed with a lower index —
// the same precedence a sequential loop hitting the cancelled item in
// place would have reported. Results are bit-identical to Map whenever
// ctx never fires.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	p := NewPool(workers)
	cancelled := -1 // index of the first item never dispatched
	for i := 0; i < n && !p.Failed(); i++ {
		if ctx.Err() != nil {
			cancelled = i
			break
		}
		i := i
		p.Go(i, func() error {
			v, err := fn(i)
			if err != nil {
				return err
			}
			out[i] = v // distinct index per task: no two goroutines share a slot
			return nil
		})
	}
	err := p.Wait()
	if cancelled >= 0 && (err == nil || p.errIdx > cancelled) {
		// The cancellation point outranks any later item's failure.
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Until drives an open-ended sequence of indexed tasks 0, 1, 2, … with the
// sequential semantics
//
//	for i := 0; i < max; i++ {
//	        v, err := fn(i)            // abort on error
//	        out = append(out, v)
//	        if stop(out) { break }     // converged
//	}
//
// but evaluates fn in speculative batches. After each batch the results
// are scanned in index order: the first error aborts exactly as the loop
// above would (a failure past a stop index is never reported, because the
// loop would not have reached it), and the first index where stop fires
// truncates the output there, discarding the speculatively computed tail.
// stop is only ever called on dense prefixes in increasing length order,
// so convergence rules that inspect the whole prefix (variance deltas)
// behave identically to the sequential loop.
//
// hint bounds the first batch: when the caller knows stop cannot fire
// before hint items (a repeat floor), speculating past it on round one
// only risks waste. Later batches ramp up geometrically (the prefix
// length, capped at the pool width), so the total work stays within ~2x
// of the sequential loop's while still saturating wide pools when
// convergence is genuinely far off. hint <= 0 means no hint. Batch sizes
// never influence the returned prefix, only how much speculative work can
// be discarded.
func Until[T any](workers, max, hint int, fn func(i int) (T, error), stop func(prefix []T) bool) ([]T, error) {
	return UntilCtx(context.Background(), workers, max, hint, fn, stop)
}

// UntilCtx is Until with a cancellation boundary between speculative
// batches: a done ctx stops the loop before the next batch dispatches and
// returns ctx's error. Items inside a batch observe ctx through their own
// closures; the replay-in-order semantics are unchanged, so any prefix
// returned before cancellation is bit-identical to Until's.
func UntilCtx[T any](ctx context.Context, workers, max, hint int, fn func(i int) (T, error), stop func(prefix []T) bool) ([]T, error) {
	w := Workers(workers)
	var out []T
	for len(out) < max {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := w
		if len(out) == 0 {
			if hint > 0 && hint < batch {
				batch = hint
			}
		} else if len(out) < batch {
			batch = len(out)
		}
		if rem := max - len(out); batch > rem {
			batch = rem
		}
		base := len(out)
		vals := make([]T, batch)
		errs := make([]error, batch)
		p := NewPool(w)
		for j := 0; j < batch; j++ {
			j := j
			p.Go(j, func() error {
				vals[j], errs[j] = fn(base + j)
				return nil // errors are replayed in order below
			})
		}
		p.Wait() // tasks never return errors; this is a barrier
		for j := 0; j < batch; j++ {
			if errs[j] != nil {
				return nil, errs[j]
			}
			out = append(out, vals[j])
			if stop(out) {
				return out, nil
			}
		}
	}
	return out, nil
}
