package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestMapCtxBackgroundMatchesMap: a background context changes nothing —
// MapCtx and Map return identical results.
func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	plain, err := Map(4, 20, fn)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := MapCtx(context.Background(), 4, 20, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Error("MapCtx(Background) differs from Map")
	}
}

// TestMapCtxPreCancelled: a dead context dispatches nothing and returns
// its error.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	_, err := MapCtx(ctx, 4, 100, func(i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("%d items ran under a dead context", n)
	}
}

// TestMapCtxStopsDispatching: cancelling mid-stream stops further
// dispatch at the next boundary; items already running finish.
func TestMapCtxStopsDispatching(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	_, err := MapCtx(ctx, 1, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			cancel() // the items after the in-flight window must never start
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One worker: item 3 may already be queued when 2 cancels, but the
	// dispatch loop must stop almost immediately after.
	if n := calls.Load(); n > 10 {
		t.Errorf("%d items ran after cancellation", n)
	}
}

// TestMapCtxErrorPrecedence: an error at a lower index than the
// cancellation point wins — the error a sequential loop would have hit
// first.
func TestMapCtxErrorPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("boom")
	_, err := MapCtx(ctx, 1, 1000, func(i int) (int, error) {
		if i == 1 {
			cancel()       // fires the ctx boundary before item 2 dispatches…
			return 0, boom // …but this lower-indexed failure outranks it
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the lower-indexed item error", err)
	}
}

// TestUntilCtxPreCancelled: a dead context stops the batch loop before
// any work.
func TestUntilCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	_, err := UntilCtx(ctx, 4, 100, 0,
		func(i int) (int, error) { calls.Add(1); return i, nil },
		func(prefix []int) bool { return false })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("%d items ran under a dead context", n)
	}
}

// TestUntilCtxCancelBetweenBatches: cancellation between speculative
// batches surfaces the context error instead of looping to max.
func TestUntilCtxCancelBetweenBatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	_, err := UntilCtx(ctx, 2, 1_000_000, 1,
		func(i int) (int, error) {
			calls.Add(1)
			cancel()
			return i, nil
		},
		func(prefix []int) bool { return false })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n > 16 {
		t.Errorf("%d items ran after cancellation", n)
	}
}

// TestUntilCtxBackgroundMatchesUntil: with a background context the
// convergence semantics are untouched.
func TestUntilCtxBackgroundMatchesUntil(t *testing.T) {
	fn := func(i int) (int, error) { return i, nil }
	stop := func(prefix []int) bool { return len(prefix) >= 7 }
	plain, err := Until(4, 100, 3, fn, stop)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := UntilCtx(context.Background(), 4, 100, 3, fn, stop)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Error("UntilCtx(Background) differs from Until")
	}
}
