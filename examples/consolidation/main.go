// Consolidation: drive the consolidation manager — the paper's motivating
// application and the remaining actor of its Figure 1 — with a trained
// WAVM3 estimator. The energy-aware policy prices every candidate move and
// empties hosts at minimal migration cost; the classic first-fit-decreasing
// baseline ignores energy and demonstrates the mistake the paper's
// conclusion warns about (consolidating a high-dirty-ratio VM onto a busy
// host).
//
// Run with: go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"repro/wavm3"
)

func main() {
	fmt.Println("training WAVM3 estimator...")
	est, err := wavm3.TrainEstimator(wavm3.TrainingConfig{Quick: true, RunsPerPoint: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// A small data centre: a busy host, a calm host, and two lightly used
	// hosts worth emptying — one of them running a dirty-memory cache.
	hosts := []wavm3.HostState{
		{Name: "rack1-busy", Threads: 32, MemBytes: wavm3.GiB(32), IdlePower: 440, VMs: []wavm3.VMState{
			{Name: "analytics", MemBytes: wavm3.GiB(4), BusyVCPUs: 20, DirtyRatio: 0.2},
		}},
		{Name: "rack2-calm", Threads: 32, MemBytes: wavm3.GiB(32), IdlePower: 440, VMs: []wavm3.VMState{
			{Name: "web", MemBytes: wavm3.GiB(4), BusyVCPUs: 4, DirtyRatio: 0.1},
		}},
		{Name: "rack3", Threads: 32, MemBytes: wavm3.GiB(32), IdlePower: 440, VMs: []wavm3.VMState{
			{Name: "redis-cache", MemBytes: wavm3.GiB(4), BusyVCPUs: 2, DirtyRatio: 0.9},
		}},
		{Name: "rack4", Threads: 32, MemBytes: wavm3.GiB(32), IdlePower: 440, VMs: []wavm3.VMState{
			{Name: "batch", MemBytes: wavm3.GiB(4), BusyVCPUs: 3, DirtyRatio: 0.05},
		}},
	}

	show := func(name string, plan *wavm3.ConsolidationPlan) {
		fmt.Printf("\n%s policy:\n", name)
		if len(plan.Moves) == 0 {
			fmt.Println("  no moves")
			return
		}
		for _, m := range plan.Moves {
			fmt.Printf("  move %-12s %-10s -> %-10s  %7.1f kJ  %8s\n",
				m.VM, m.From, m.To, m.Cost.Energy.KiloJoules(), m.Cost.Duration.Round(1e9))
		}
		fmt.Printf("  freed hosts: %v (saves %.0f W idle)\n", plan.FreedHosts, float64(plan.IdleSavings))
		fmt.Printf("  total migration energy: %.1f kJ\n", plan.MigrationEnergy.KiloJoules())
		if pb, err := plan.Payback(); err == nil {
			fmt.Printf("  pays back in %s of saved idle power\n", pb.Round(1e9))
		}
	}

	ea, err := est.PlanConsolidation(hosts, wavm3.ConsolidationConfig{})
	if err != nil {
		log.Fatal(err)
	}
	show("energy-aware (WAVM3)", ea)

	ffd, err := est.PlanConsolidationFFD(hosts, wavm3.ConsolidationConfig{})
	if err != nil {
		log.Fatal(err)
	}
	show("first-fit-decreasing (energy-blind)", ffd)

	fmt.Printf("\nenergy-aware spends %.1f kJ vs FFD's %.1f kJ for its consolidation —\n",
		ea.MigrationEnergy.KiloJoules(), ffd.MigrationEnergy.KiloJoules())
	fmt.Println("the difference is mostly where the high-dirty-ratio cache lands.")
}
