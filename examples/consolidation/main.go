// Consolidation: drive the consolidation manager — the paper's motivating
// application and the remaining actor of its Figure 1 — with a trained
// WAVM3 estimator. The data-centre state comes from the scenario library
// (scenarios/consolidation-sweep.json) instead of being duplicated here:
// the same hosts that `wavm3scen` executes with the energy-blind
// first-fit-decreasing plan are planned here by the energy-aware policy,
// so the two tools price exactly the same sweep.
//
// Run from the repository root with: go run ./examples/consolidation
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"repro/internal/scenario"
	"repro/wavm3"
)

func main() {
	dir := flag.String("scenarios", "scenarios", "scenario library directory")
	flag.Parse()

	// The data centre under consolidation is declarative data.
	spec, err := scenario.Load(filepath.Join(*dir, "consolidation-sweep.json"))
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := spec.Compile()
	if err != nil {
		log.Fatal(err)
	}
	hosts := compiled.Plan.Hosts
	fmt.Printf("loaded %q: %d hosts\n", spec.Name, len(hosts))

	fmt.Println("training WAVM3 estimator...")
	est, err := wavm3.TrainEstimator(wavm3.TrainingConfig{Quick: true, RunsPerPoint: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, plan *wavm3.ConsolidationPlan) {
		fmt.Printf("\n%s policy:\n", name)
		if len(plan.Moves) == 0 {
			fmt.Println("  no moves")
			return
		}
		for _, m := range plan.Moves {
			fmt.Printf("  move %-12s %-10s -> %-10s  %7.1f kJ  %8s\n",
				m.VM, m.From, m.To, m.Cost.Energy.KiloJoules(), m.Cost.Duration.Round(1e9))
		}
		fmt.Printf("  freed hosts: %v (saves %.0f W idle)\n", plan.FreedHosts, float64(plan.IdleSavings))
		fmt.Printf("  total migration energy: %.1f kJ\n", plan.MigrationEnergy.KiloJoules())
		if pb, err := plan.Payback(); err == nil {
			fmt.Printf("  pays back in %s of saved idle power\n", pb.Round(1e9))
		}
	}

	ea, err := est.PlanConsolidation(hosts, wavm3.ConsolidationConfig{})
	if err != nil {
		log.Fatal(err)
	}
	show("energy-aware (WAVM3)", ea)

	ffd, err := est.PlanConsolidationFFD(hosts, wavm3.ConsolidationConfig{})
	if err != nil {
		log.Fatal(err)
	}
	show("first-fit-decreasing (energy-blind)", ffd)

	fmt.Printf("\nenergy-aware spends %.1f kJ vs FFD's %.1f kJ for its consolidation —\n",
		ea.MigrationEnergy.KiloJoules(), ffd.MigrationEnergy.KiloJoules())
	fmt.Println("the difference is mostly where the high-dirty-ratio cache lands.")
	fmt.Printf("\nto execute the energy-blind plan as measured migrations, run:\n")
	fmt.Printf("  go run ./cmd/wavm3scen %s\n", filepath.Join(*dir, "consolidation-sweep.json"))
}
