// Modelcompare: run a measurement campaign on the simulated testbed,
// train WAVM3 and the three baselines (HUANG, LIU, STRUNK) on the same
// training split, and print the paper's comparison (Table VII) together
// with the headline claim — how much accuracy workload-awareness buys.
//
// Run with: go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	fmt.Fprintln(os.Stderr, "running reduced campaign on m01-m02 (a few seconds)...")
	cfg := experiments.Config{
		Pair:        hw.PairM,
		MinRuns:     3,
		VarianceTol: 0.9,
		Seed:        5,
		LoadLevels:  []int{0, 3, 5, 8},
		DirtyLevels: []units.Fraction{0.05, 0.35, 0.55, 0.95},
	}
	camp, err := experiments.RunCampaign(cfg,
		experiments.CPULoadSource, experiments.CPULoadTarget, experiments.MemLoadVM)
	if err != nil {
		log.Fatal(err)
	}
	suite, err := experiments.BuildSuite(camp, nil)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := suite.Table7()
	if err != nil {
		log.Fatal(err)
	}
	if err := report.ComparisonTable(rows).Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The paper's headline: improvement in prediction accuracy on live
	// migration versus the best baseline.
	var wavm3, huang float64
	for _, r := range rows {
		if r.Host != "Source" {
			continue
		}
		switch r.Model {
		case "WAVM3":
			wavm3 = r.Live.NRMSE
		case "HUANG":
			huang = r.Live.NRMSE
		}
	}
	fmt.Printf("\nlive migration, source host: WAVM3 %.1f%% NRMSE vs HUANG %.1f%% NRMSE\n",
		wavm3*100, huang*100)
	if huang > 0 {
		fmt.Printf("workload-awareness improves accuracy by %.1f%% of range (paper: up to 24%%)\n",
			(huang-wavm3)*100)
	}
}
