// Quickstart: train a WAVM3 estimator on the simulated testbed and predict
// the energy cost of a planned live migration — the question the model
// exists to answer. As a closing sanity check, it loads a scenario from
// the library (scenarios/memstorm-live.json) and measures the same class
// of migration on the simulated testbed, putting prediction and
// measurement side by side.
//
// Run from the repository root with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"repro/internal/scenario"
	"repro/internal/vm"
	"repro/wavm3"
)

func main() {
	dir := flag.String("scenarios", "scenarios", "scenario library directory")
	flag.Parse()

	// Train on a reduced campaign (a few seconds). Production use would
	// run the full sweeps: wavm3.TrainingConfig{RunsPerPoint: 10}.
	fmt.Println("training WAVM3 on the simulated m01-m02 testbed...")
	est, err := wavm3.TrainEstimator(wavm3.TrainingConfig{Quick: true, RunsPerPoint: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A 4 GiB VM running a memory-hungry service (dirty ratio 55%), one
	// busy vCPU, migrating from a half-loaded source to an idle target.
	plan := wavm3.Plan{
		Kind:              wavm3.Live,
		VMMemoryBytes:     4 << 30,
		VMBusyVCPUs:       1,
		DirtyRatio:        0.55,
		SourceBusyThreads: 16,
		TargetBusyThreads: 0,
	}
	e, err := est.Estimate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanned live migration of a 4 GiB VM (DR=55%%):\n")
	fmt.Printf("  predicted duration:     %v\n", e.Duration.Round(1e9))
	fmt.Printf("  predicted data moved:   %.2f GiB\n", float64(e.TransferBytes)/(1<<30))
	fmt.Printf("  source energy:          %.1f kJ\n", e.Source.KiloJoules())
	fmt.Printf("  target energy:          %.1f kJ\n", e.Target.KiloJoules())
	fmt.Printf("  data-centre total:      %.1f kJ\n", e.Total().KiloJoules())

	// Compare against the non-live alternative for the same VM.
	plan.Kind = wavm3.NonLive
	plan.DirtyRatio = 0
	n, err := est.Estimate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuspend-resume alternative:\n")
	fmt.Printf("  predicted duration:     %v (service down throughout)\n", n.Duration.Round(1e9))
	fmt.Printf("  data-centre total:      %.1f kJ\n", n.Total().KiloJoules())
	if n.Total() < e.Total() {
		fmt.Println("\nnon-live is cheaper energy-wise - the price of live migration is availability.")
	} else {
		fmt.Println("\nlive migration wins on both energy and availability here.")
	}

	// Close the loop against the scenario library: measure a committed
	// memory-storm scenario on the simulated testbed and compare with the
	// model's prediction for the same migration.
	spec, err := scenario.Load(filepath.Join(*dir, "memstorm-live.json"))
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := spec.Compile()
	if err != nil {
		log.Fatal(err)
	}
	sc := compiled.Runs[0].Scenario
	run, err := wavm3.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	// The predicted plan derives from the same compiled scenario, so
	// editing the JSON file keeps measurement and prediction aligned.
	typ, err := vm.Lookup(sc.MigratingType)
	if err != nil {
		log.Fatal(err)
	}
	loadTyp, err := vm.Lookup(vm.TypeLoadCPU)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := est.Estimate(wavm3.Plan{
		Kind:              sc.Kind,
		VMMemoryBytes:     int64(typ.RAM),
		VMBusyVCPUs:       float64(sc.MigratingProfile.CPUPerVCPU) * float64(typ.VCPUs),
		DirtyRatio:        spec.Migrating.Workload.DirtyTarget,
		SourceBusyThreads: float64(sc.SourceLoadVMs * loadTyp.VCPUs),
		TargetBusyThreads: float64(sc.TargetLoadVMs * loadTyp.VCPUs),
	})
	if err != nil {
		log.Fatal(err)
	}
	measured := run.SourceEnergy.Total() + run.TargetEnergy.Total()
	fmt.Printf("\nscenario %q (from the library):\n", spec.Name)
	fmt.Printf("  measured on the testbed:  %.1f kJ over %v\n",
		measured.KiloJoules(), (run.Bounds.ME - run.Bounds.MS).Round(1e9))
	fmt.Printf("  model's prediction:       %.1f kJ over %v\n",
		pred.Total().KiloJoules(), pred.Duration.Round(1e9))
}
