// Quickstart: train a WAVM3 estimator on the simulated testbed and predict
// the energy cost of a planned live migration — the question the model
// exists to answer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/wavm3"
)

func main() {
	// Train on a reduced campaign (a few seconds). Production use would
	// run the full sweeps: wavm3.TrainingConfig{RunsPerPoint: 10}.
	fmt.Println("training WAVM3 on the simulated m01-m02 testbed...")
	est, err := wavm3.TrainEstimator(wavm3.TrainingConfig{Quick: true, RunsPerPoint: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A 4 GiB VM running a memory-hungry service (dirty ratio 55%), one
	// busy vCPU, migrating from a half-loaded source to an idle target.
	plan := wavm3.Plan{
		Kind:              wavm3.Live,
		VMMemoryBytes:     4 << 30,
		VMBusyVCPUs:       1,
		DirtyRatio:        0.55,
		SourceBusyThreads: 16,
		TargetBusyThreads: 0,
	}
	e, err := est.Estimate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanned live migration of a 4 GiB VM (DR=55%%):\n")
	fmt.Printf("  predicted duration:     %v\n", e.Duration.Round(1e9))
	fmt.Printf("  predicted data moved:   %.2f GiB\n", float64(e.TransferBytes)/(1<<30))
	fmt.Printf("  source energy:          %.1f kJ\n", e.Source.KiloJoules())
	fmt.Printf("  target energy:          %.1f kJ\n", e.Target.KiloJoules())
	fmt.Printf("  data-centre total:      %.1f kJ\n", e.Total().KiloJoules())

	// Compare against the non-live alternative for the same VM.
	plan.Kind = wavm3.NonLive
	plan.DirtyRatio = 0
	n, err := est.Estimate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuspend-resume alternative:\n")
	fmt.Printf("  predicted duration:     %v (service down throughout)\n", n.Duration.Round(1e9))
	fmt.Printf("  data-centre total:      %.1f kJ\n", n.Total().KiloJoules())
	if n.Total() < e.Total() {
		fmt.Println("\nnon-live is cheaper energy-wise - the price of live migration is availability.")
	} else {
		fmt.Println("\nlive migration wins on both energy and availability here.")
	}
}
