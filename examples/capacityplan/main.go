// Capacityplan: sweep dirty ratios and host loads with a trained WAVM3
// estimator to map out when a live migration is worth its energy — the
// planning exercise the paper's conclusion sketches. Prints a small
// energy matrix (dirty ratio × target load) for a 4 GiB VM.
//
// Run with: go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"repro/wavm3"
)

func main() {
	fmt.Println("training WAVM3 estimator...")
	est, err := wavm3.TrainEstimator(wavm3.TrainingConfig{Quick: true, RunsPerPoint: 2, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	dirtyLevels := []float64{0.05, 0.25, 0.50, 0.75, 0.95}
	targetLoads := []float64{0, 8, 16, 24, 32}

	fmt.Println("\npredicted total migration energy [kJ] for a live 4 GiB migration")
	fmt.Printf("%-12s", "DR \\ load")
	for _, l := range targetLoads {
		fmt.Printf("%10.0f", l)
	}
	fmt.Println()
	for _, dr := range dirtyLevels {
		fmt.Printf("%-12.0f%%", dr*100)
		for _, l := range targetLoads {
			e, err := est.Estimate(wavm3.Plan{
				Kind:              wavm3.Live,
				VMMemoryBytes:     4 << 30,
				VMBusyVCPUs:       1,
				DirtyRatio:        dr,
				SourceBusyThreads: 8,
				TargetBusyThreads: l,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.1f", e.Total().KiloJoules())
		}
		fmt.Println()
	}

	// Break-even analysis: consolidation saves the idle power of the
	// vacated host; the migration must amortise its own cost.
	fmt.Println("\nbreak-even: a vacated Opteron host idles at ~440 W AC;")
	hi, err := est.Estimate(wavm3.Plan{
		Kind: wavm3.Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 1,
		DirtyRatio: 0.95, SourceBusyThreads: 8, TargetBusyThreads: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, err := est.Estimate(wavm3.Plan{
		Kind: wavm3.Live, VMMemoryBytes: 4 << 30, VMBusyVCPUs: 1,
		DirtyRatio: 0.05, SourceBusyThreads: 8, TargetBusyThreads: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	const idleW = 440.0
	fmt.Printf("a cheap migration (%.1f kJ) pays back in %.0f s of saved idle power,\n",
		lo.Total().KiloJoules(), float64(lo.Total())/idleW)
	fmt.Printf("the worst case (%.1f kJ) needs %.0f s - plan consolidations accordingly.\n",
		hi.Total().KiloJoules(), float64(hi.Total())/idleW)
}
